// Unit tests for the utility substrate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "util/bit_vector.h"
#include "util/indexed_heap.h"
#include "util/io_stats.h"
#include "util/radix_heap.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/timer.h"
#include "util/varint.h"

namespace islabel {
namespace {

// ---------- Status / Result ----------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(Status, CopyingSharesRep) {
  Status a = Status::NotFound("x");
  Status b = a;
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(a, b);
}

TEST(Status, AllCodesStringify) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotSupported), "NotSupported");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(Status, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::Corruption("bad"); };
  auto outer = [&]() -> Status {
    ISLABEL_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsCorruption());
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ---------- Rng ----------

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 16; ++i) diff += (a.Next() != b.Next());
  EXPECT_GT(diff, 0);
}

TEST(Rng, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(9);
  std::map<std::uint64_t, int> seen;
  for (int i = 0; i < 3000; ++i) ++seen[rng.Uniform(8)];
  EXPECT_EQ(seen.size(), 8u);  // all buckets hit
  for (const auto& [k, c] : seen) EXPECT_GT(c, 200);  // roughly uniform
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(11);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 5000; ++i) {
    std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_hit |= (v == -3);
    hi_hit |= (v == 3);
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(13);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.25);
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.03);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ---------- BitVector ----------

TEST(BitVector, SetGetClear) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_FALSE(bv[0]);
  bv.Set(0);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv[0]);
  EXPECT_TRUE(bv[64]);
  EXPECT_TRUE(bv[129]);
  EXPECT_EQ(bv.Count(), 3u);
  bv.Clear(64);
  EXPECT_FALSE(bv[64]);
  EXPECT_EQ(bv.Count(), 2u);
}

TEST(BitVector, InitializedTrueTrimsTail) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.Count(), 70u);
}

TEST(BitVector, FindNextSet) {
  BitVector bv(200);
  bv.Set(3);
  bv.Set(64);
  bv.Set(199);
  EXPECT_EQ(bv.FindNextSet(0), 3u);
  EXPECT_EQ(bv.FindNextSet(4), 64u);
  EXPECT_EQ(bv.FindNextSet(65), 199u);
  EXPECT_EQ(bv.FindNextSet(200), 200u);
  bv.Clear(3);
  EXPECT_EQ(bv.FindNextSet(0), 64u);
}

TEST(BitVector, ResetZeroes) {
  BitVector bv(100, true);
  bv.Reset();
  EXPECT_EQ(bv.Count(), 0u);
  EXPECT_EQ(bv.size(), 100u);
}

// ---------- IndexedHeap ----------

TEST(IndexedHeap, BasicOrdering) {
  IndexedHeap h(10);
  h.Push(3, 30);
  h.Push(1, 10);
  h.Push(2, 20);
  EXPECT_EQ(h.Size(), 3u);
  EXPECT_EQ(h.MinItem(), 1u);
  auto [i1, k1] = h.PopMin();
  EXPECT_EQ(i1, 1u);
  EXPECT_EQ(k1, 10u);
  auto [i2, k2] = h.PopMin();
  EXPECT_EQ(i2, 2u);
  auto [i3, k3] = h.PopMin();
  EXPECT_EQ(i3, 3u);
  EXPECT_TRUE(h.Empty());
}

TEST(IndexedHeap, DecreaseKey) {
  IndexedHeap h(5);
  h.Push(0, 100);
  h.Push(1, 50);
  h.DecreaseKey(0, 10);
  EXPECT_EQ(h.MinItem(), 0u);
  EXPECT_EQ(h.KeyOf(0), 10u);
}

TEST(IndexedHeap, PushOrDecrease) {
  IndexedHeap h(5);
  EXPECT_TRUE(h.PushOrDecrease(2, 20));
  EXPECT_FALSE(h.PushOrDecrease(2, 30));  // larger: no change
  EXPECT_TRUE(h.PushOrDecrease(2, 5));
  EXPECT_EQ(h.KeyOf(2), 5u);
}

TEST(IndexedHeap, RandomizedAgainstStdHeap) {
  Rng rng(99);
  IndexedHeap h(1000);
  std::map<std::uint32_t, std::uint64_t> model;  // item -> key
  for (int step = 0; step < 20000; ++step) {
    const std::uint32_t item = static_cast<std::uint32_t>(rng.Uniform(1000));
    if (!h.Contains(item)) {
      std::uint64_t key = rng.Uniform(1 << 20);
      h.Push(item, key);
      model[item] = key;
    } else if (rng.Bernoulli(0.5)) {
      std::uint64_t key = h.KeyOf(item) == 0 ? 0 : rng.Uniform(h.KeyOf(item));
      h.DecreaseKey(item, key);
      model[item] = key;
    } else {
      auto [i, k] = h.PopMin();
      // Must be a minimal key in the model.
      std::uint64_t min_key = UINT64_MAX;
      for (const auto& [mi, mk] : model) min_key = std::min(min_key, mk);
      EXPECT_EQ(k, min_key);
      EXPECT_EQ(model[i], k);
      model.erase(i);
    }
    EXPECT_EQ(h.Size(), model.size());
  }
}

// ---------- RadixHeap ----------

TEST(RadixHeap, MonotoneSequence) {
  RadixHeap h;
  h.Push(1, 5);
  h.Push(2, 3);
  h.Push(3, 9);
  auto [i1, k1] = h.PopMin();
  EXPECT_EQ(k1, 3u);
  h.Push(4, 4);  // >= last popped key
  auto [i2, k2] = h.PopMin();
  EXPECT_EQ(k2, 4u);
  auto [i3, k3] = h.PopMin();
  EXPECT_EQ(k3, 5u);
  auto [i4, k4] = h.PopMin();
  EXPECT_EQ(k4, 9u);
  EXPECT_TRUE(h.Empty());
}

TEST(RadixHeap, RandomizedMonotoneAgainstPriorityQueue) {
  Rng rng(5);
  RadixHeap h;
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      model;
  std::uint64_t last = 0;
  for (int step = 0; step < 50000; ++step) {
    if (model.empty() || rng.Bernoulli(0.6)) {
      std::uint64_t key = last + rng.Uniform(1000);
      h.Push(0, key);
      model.push(key);
    } else {
      auto [item, key] = h.PopMin();
      EXPECT_EQ(key, model.top());
      model.pop();
      last = key;
    }
  }
}

TEST(RadixHeap, DijkstraEquivalence) {
  // A radix-heap Dijkstra (monotone keys + lazy deletion) must agree with
  // the indexed-binary-heap implementation.
  Rng rng(31);
  // Small random weighted graph, adjacency as vectors.
  const std::uint32_t n = 200;
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj(n);
  for (int e = 0; e < 600; ++e) {
    std::uint32_t u = static_cast<std::uint32_t>(rng.Uniform(n));
    std::uint32_t v = static_cast<std::uint32_t>(rng.Uniform(n));
    if (u == v) continue;
    std::uint32_t w = 1 + static_cast<std::uint32_t>(rng.Uniform(9));
    adj[u].push_back({v, w});
    adj[v].push_back({u, w});
  }
  auto dijkstra_binary = [&](std::uint32_t s) {
    std::vector<std::uint64_t> dist(n, UINT64_MAX);
    IndexedHeap heap(n);
    dist[s] = 0;
    heap.Push(s, 0);
    while (!heap.Empty()) {
      auto [v, d] = heap.PopMin();
      for (auto [u, w] : adj[v]) {
        if (d + w < dist[u]) {
          dist[u] = d + w;
          heap.PushOrDecrease(u, d + w);
        }
      }
    }
    return dist;
  };
  auto dijkstra_radix = [&](std::uint32_t s) {
    std::vector<std::uint64_t> dist(n, UINT64_MAX);
    RadixHeap heap;
    dist[s] = 0;
    heap.Push(s, 0);
    while (!heap.Empty()) {
      auto [v, d] = heap.PopMin();
      if (d != dist[v]) continue;  // stale entry
      for (auto [u, w] : adj[v]) {
        if (d + w < dist[u]) {
          dist[u] = d + w;
          heap.Push(u, d + w);
        }
      }
    }
    return dist;
  };
  for (std::uint32_t s : {0u, 13u, 77u}) {
    EXPECT_EQ(dijkstra_binary(s), dijkstra_radix(s)) << "source " << s;
  }
}

// ---------- Varint ----------

TEST(Varint, RoundTripValues) {
  const std::uint64_t values[] = {0,       1,        127,        128,
                                  16383,   16384,    UINT32_MAX, 1ULL << 40,
                                  UINT64_MAX - 1, UINT64_MAX};
  std::string buf;
  for (std::uint64_t v : values) PutVarint64(&buf, v);
  Decoder dec(buf);
  for (std::uint64_t v : values) {
    std::uint64_t got = 0;
    ASSERT_TRUE(dec.GetVarint64(&got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(dec.Done());
}

TEST(Varint, SignedZigzag) {
  const std::int64_t values[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  std::string buf;
  for (std::int64_t v : values) PutVarintSigned64(&buf, v);
  Decoder dec(buf);
  for (std::int64_t v : values) {
    std::int64_t got = 0;
    ASSERT_TRUE(dec.GetVarintSigned64(&got));
    EXPECT_EQ(got, v);
  }
}

TEST(Varint, FixedWidthRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  Decoder dec(buf);
  std::uint32_t a;
  std::uint64_t b;
  ASSERT_TRUE(dec.GetFixed32(&a));
  ASSERT_TRUE(dec.GetFixed64(&b));
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 0x0123456789abcdefULL);
}

TEST(Varint, TruncationDetected) {
  std::string buf;
  PutVarint64(&buf, 1 << 20);
  buf.pop_back();
  Decoder dec(buf);
  std::uint64_t v;
  EXPECT_FALSE(dec.GetVarint64(&v));
}

TEST(Varint, FixedTruncationDetected) {
  std::string buf = "abc";
  Decoder dec(buf);
  std::uint32_t v;
  EXPECT_FALSE(dec.GetFixed32(&v));
}

TEST(Varint, SmallValuesAreCompact) {
  std::string buf;
  PutVarint64(&buf, 100);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint64(&buf, 300);
  EXPECT_EQ(buf.size(), 2u);
}

// ---------- IoStats ----------

TEST(IoStats, Accumulates) {
  IoStats a, b;
  a.seeks = 2;
  a.bytes_read = 100;
  b.seeks = 3;
  b.bytes_written = 50;
  a += b;
  EXPECT_EQ(a.seeks, 5u);
  EXPECT_EQ(a.bytes_read, 100u);
  EXPECT_EQ(a.bytes_written, 50u);
}

TEST(IoStats, ModeledHddTime) {
  IoStats s;
  s.seeks = 10;  // 10 * 10ms = 0.1 s
  s.bytes_read = 100 * 1000 * 1000;  // 1 s at 100 MB/s
  EXPECT_NEAR(s.ModeledHddSeconds(), 1.1, 1e-9);
}

// ---------- Timer ----------

TEST(Timer, MeasuresElapsed) {
  WallTimer t;
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMicros(), 0);
}

TEST(Timer, ScopedTimerAccumulates) {
  double acc = 0.0;
  {
    ScopedTimer st(&acc);
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
  }
  EXPECT_GT(acc, 0.0);
}

}  // namespace
}  // namespace islabel
