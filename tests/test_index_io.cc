// Index persistence: Save/Load round-trips in both label modes, and
// corruption handling.

#include <gtest/gtest.h>

#include <filesystem>

#include "baseline/dijkstra.h"
#include "core/index.h"
#include "tests/test_common.h"

namespace islabel {
namespace {

using testing::Family;
using testing::MakeTestGraph;
using testing::SampleQueryPairs;

class IndexIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "islabel_io_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(IndexIoTest, SaveLoadInMemoryRoundTrip) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 300, true, 19);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  ASSERT_TRUE(index.Save(dir_).ok());

  auto loaded = ISLabelIndex::Load(dir_, /*labels_in_memory=*/true);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ISLabelIndex back = std::move(loaded).value();

  EXPECT_EQ(back.k(), index.k());
  EXPECT_EQ(back.NumVertices(), index.NumVertices());
  for (VertexId v = 0; v < index.NumVertices(); ++v) {
    EXPECT_EQ(back.LevelOf(v), index.LevelOf(v));
  }
  // Labels identical.
  ASSERT_EQ(back.labels().size(), index.labels().size());
  for (VertexId v = 0; v < index.NumVertices(); ++v) {
    ASSERT_EQ(back.labels()[v].size(), index.labels()[v].size());
    for (std::size_t i = 0; i < index.labels()[v].size(); ++i) {
      EXPECT_EQ(back.labels()[v][i], index.labels()[v][i]);
    }
  }
  // Queries identical.
  for (auto [s, t] : SampleQueryPairs(g, 100, 23)) {
    Distance d1 = 0, d2 = 0;
    ASSERT_TRUE(index.Query(s, t, &d1).ok());
    ASSERT_TRUE(back.Query(s, t, &d2).ok());
    ASSERT_EQ(d1, d2);
  }
}

TEST_F(IndexIoTest, ArenaRoundTripsSlabIdenticalInBothModes) {
  Graph g = MakeTestGraph(Family::kRMat, 256, true, 47);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  ASSERT_TRUE(index.Save(dir_).ok());

  // IM mode: the loaded arena (bulk slab decode) must equal the built one
  // slab-for-slab, offsets included.
  auto im = ISLabelIndex::Load(dir_, /*labels_in_memory=*/true);
  ASSERT_TRUE(im.ok());
  EXPECT_TRUE(im->labels() == index.labels());

  // Disk mode: per-vertex positioned reads must decode to the same views.
  auto disk = ISLabelIndex::Load(dir_, /*labels_in_memory=*/false);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE(disk->labels_on_disk());
  std::vector<LabelEntry> got;
  for (VertexId v = 0; v < index.NumVertices(); ++v) {
    ASSERT_TRUE(disk->label_store()->GetLabel(v, &got).ok());
    EXPECT_TRUE(LabelView(got) == index.labels().View(v)) << "vertex " << v;
  }
}

TEST_F(IndexIoTest, SaveAfterUpdatesPersistsSideTable) {
  // §8.3 patches live in the arena's overflow side-table; Save must fold
  // them into the file so a reload (either mode) sees the patched labels.
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 120, true, 53);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  const VertexId v = g.NumVertices();
  ASSERT_TRUE(index.InsertVertex(v, {{0, 2}, {7, 1}}).ok());
  ASSERT_GT(index.labels().SideTableSize(), 0u);
  ASSERT_TRUE(index.Save(dir_).ok());

  for (bool in_memory : {true, false}) {
    auto loaded = ISLabelIndex::Load(dir_, in_memory);
    ASSERT_TRUE(loaded.ok()) << (in_memory ? "IM" : "disk");
    ISLabelIndex back = std::move(loaded).value();
    ASSERT_EQ(back.NumVertices(), index.NumVertices());
    for (auto [s, t] : SampleQueryPairs(g, 60, 13)) {
      Distance d1 = 0, d2 = 0;
      ASSERT_TRUE(index.Query(s, t, &d1).ok());
      ASSERT_TRUE(back.Query(s, t, &d2).ok());
      ASSERT_EQ(d1, d2);
    }
    Distance d1 = 0, d2 = 0;
    ASSERT_TRUE(index.Query(v, 3, &d1).ok());
    ASSERT_TRUE(back.Query(v, 3, &d2).ok());
    EXPECT_EQ(d1, d2);
  }
}

TEST_F(IndexIoTest, LoadedIndexSupportsPaths) {
  Graph g = MakeTestGraph(Family::kRMat, 128, true, 7);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(dir_).ok());
  auto loaded = ISLabelIndex::Load(dir_, true);
  ASSERT_TRUE(loaded.ok());
  ISLabelIndex back = std::move(loaded).value();
  for (auto [s, t] : SampleQueryPairs(g, 40, 3)) {
    std::vector<VertexId> path;
    Distance dist = 0;
    ASSERT_TRUE(back.ShortestPath(s, t, &path, &dist).ok());
    ASSERT_EQ(dist, DijkstraP2P(g, s, t));
    testing::AssertValidPath(g, s, t, path, dist);
  }
}

TEST_F(IndexIoTest, DiskResidentModeCountsOneIoPerLabel) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 200, false, 31);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(dir_).ok());
  auto loaded = ISLabelIndex::Load(dir_, /*labels_in_memory=*/false);
  ASSERT_TRUE(loaded.ok());
  ISLabelIndex disk = std::move(loaded).value();
  ASSERT_TRUE(disk.labels_on_disk());
  ASSERT_NE(disk.label_store(), nullptr);

  // Two below-core endpoints (core labels are synthesized without I/O),
  // far apart so the reads cannot coalesce into one sequential run.
  VertexId s_v = kInvalidVertex, t_v = kInvalidVertex;
  for (VertexId v = 0; v < disk.NumVertices(); ++v) {
    if (disk.InCore(v)) continue;
    if (s_v == kInvalidVertex) {
      s_v = v;
    } else {
      t_v = v;  // keep the last one: maximal distance in the file
    }
  }
  ASSERT_NE(t_v, kInvalidVertex);
  disk.label_store()->ResetStats();
  Distance d;
  QueryStats stats;
  ASSERT_TRUE(disk.Query(s_v, t_v, &d, &stats).ok());
  EXPECT_EQ(stats.label_ios, 2u);
  // The store's own accounting agrees: two positioned reads.
  EXPECT_EQ(disk.label_store()->stats().block_reads, 2u);
  EXPECT_GE(disk.label_store()->stats().seeks, 1u);
}

TEST_F(IndexIoTest, SavingDiskResidentIndexRejected) {
  Graph g = MakeTestGraph(Family::kPath, 50, false, 1);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(dir_).ok());
  auto loaded = ISLabelIndex::Load(dir_, false);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->Save(dir_).IsNotSupported());
}

TEST_F(IndexIoTest, LoadMissingDirectoryFails) {
  auto loaded = ISLabelIndex::Load(dir_ + "/does_not_exist", true);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(IndexIoTest, CorruptedMetaDetected) {
  Graph g = MakeTestGraph(Family::kPath, 30, false, 1);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(dir_).ok());
  // Flip the magic.
  {
    std::FILE* f = std::fopen((dir_ + "/meta.islm").c_str(), "r+b");
    std::fputc('X', f);
    std::fclose(f);
  }
  auto loaded = ISLabelIndex::Load(dir_, true);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(IndexIoTest, KeepViasFalseRoundTrips) {
  Graph g = MakeTestGraph(Family::kErdosRenyi, 100, true, 5);
  IndexOptions opts;
  opts.keep_vias = false;
  auto built = ISLabelIndex::Build(g, opts);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(dir_).ok());
  auto loaded = ISLabelIndex::Load(dir_, true);
  ASSERT_TRUE(loaded.ok());
  ISLabelIndex back = std::move(loaded).value();
  for (auto [s, t] : SampleQueryPairs(g, 50, 9)) {
    Distance d = 0;
    ASSERT_TRUE(back.Query(s, t, &d).ok());
    ASSERT_EQ(d, DijkstraP2P(g, s, t));
  }
}

}  // namespace
}  // namespace islabel
