// Directed IS-LABEL (§8.2): distance and reachability against directed
// Dijkstra ground truth.

#include <gtest/gtest.h>

#include <tuple>

#include "baseline/dijkstra.h"
#include "core/directed.h"
#include "graph/digraph.h"
#include "util/random.h"

namespace islabel {
namespace {

DiGraph RandomDiGraph(VertexId n, std::uint64_t arcs, bool weighted,
                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Arc> list;
  list.reserve(arcs);
  for (std::uint64_t i = 0; i < arcs; ++i) {
    VertexId u = static_cast<VertexId>(rng.Uniform(n));
    VertexId v = static_cast<VertexId>(rng.Uniform(n));
    Weight w = weighted ? static_cast<Weight>(1 + rng.Uniform(8)) : 1;
    list.emplace_back(u, v, w);
  }
  return DiGraph::FromArcs(std::move(list), n);
}

/// A DAG-ish layered digraph: mostly forward arcs, some back arcs.
DiGraph LayeredDiGraph(VertexId n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Arc> list;
  for (VertexId v = 0; v + 1 < n; ++v) {
    list.emplace_back(v, v + 1, static_cast<Weight>(1 + rng.Uniform(4)));
    if (rng.Bernoulli(0.3)) {
      VertexId u = static_cast<VertexId>(rng.Uniform(n));
      list.emplace_back(v, u, static_cast<Weight>(1 + rng.Uniform(4)));
    }
  }
  return DiGraph::FromArcs(std::move(list), n);
}

class DirectedTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, int>> {};

TEST_P(DirectedTest, MatchesDirectedDijkstra) {
  const auto [weighted, full, seed] = GetParam();
  DiGraph g = RandomDiGraph(120, 400, weighted, seed);
  IndexOptions opts;
  opts.full_hierarchy = full;
  auto built = DirectedISLabel::Build(g, opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  DirectedISLabel index = std::move(built).value();

  for (VertexId s = 0; s < std::min<VertexId>(g.NumVertices(), 15); ++s) {
    SsspResult sssp = DijkstraSssp(g, s);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      Distance got = 0;
      ASSERT_TRUE(index.Query(s, t, &got).ok());
      ASSERT_EQ(got, sssp.dist[t]) << "(" << s << "->" << t << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DirectedTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 2, 3)),
    ([](const auto& info) {
      const auto [weighted, full, seed] = info.param;
      return std::string(weighted ? "W" : "U") + (full ? "_Full" : "_Klevel") +
             "_s" + std::to_string(seed);
    }));

TEST(Directed, AsymmetricDistances) {
  // 0 -> 1 -> 2, and 2 -> 0: dist(0,2)=2 but dist(2,1)=3 via 0.
  std::vector<Arc> arcs = {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}};
  DiGraph g = DiGraph::FromArcs(arcs);
  auto built = DirectedISLabel::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  DirectedISLabel index = std::move(built).value();
  Distance d;
  ASSERT_TRUE(index.Query(0, 2, &d).ok());
  EXPECT_EQ(d, 2u);
  ASSERT_TRUE(index.Query(2, 1, &d).ok());
  EXPECT_EQ(d, 2u);  // 2->0->1
  ASSERT_TRUE(index.Query(1, 0, &d).ok());
  EXPECT_EQ(d, 2u);  // 1->2->0
}

TEST(Directed, OneWayUnreachable) {
  std::vector<Arc> arcs = {{0, 1, 5}};
  DiGraph g = DiGraph::FromArcs(arcs);
  auto built = DirectedISLabel::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  DirectedISLabel index = std::move(built).value();
  Distance d;
  ASSERT_TRUE(index.Query(0, 1, &d).ok());
  EXPECT_EQ(d, 5u);
  ASSERT_TRUE(index.Query(1, 0, &d).ok());
  EXPECT_EQ(d, kInfDistance);
}

TEST(Directed, ReachabilityMatchesDistance) {
  DiGraph g = LayeredDiGraph(100, 5);
  auto built = DirectedISLabel::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  DirectedISLabel index = std::move(built).value();
  for (VertexId s = 0; s < 10; ++s) {
    SsspResult sssp = DijkstraSssp(g, s);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      bool reachable = false;
      ASSERT_TRUE(index.Reachable(s, t, &reachable).ok());
      EXPECT_EQ(reachable, sssp.dist[t] != kInfDistance);
    }
  }
}

TEST(Directed, SameVertexZero) {
  DiGraph g = RandomDiGraph(50, 100, true, 9);
  auto built = DirectedISLabel::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  DirectedISLabel index = std::move(built).value();
  Distance d;
  ASSERT_TRUE(index.Query(7, 7, &d).ok());
  EXPECT_EQ(d, 0u);
}

TEST(Directed, OutOfRangeRejected) {
  DiGraph g = RandomDiGraph(10, 20, false, 1);
  auto built = DirectedISLabel::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  DirectedISLabel index = std::move(built).value();
  Distance d;
  EXPECT_TRUE(index.Query(0, 99, &d).IsOutOfRange());
}

TEST(Directed, LabelsCoverBothDirections) {
  DiGraph g = LayeredDiGraph(200, 8);
  auto built = DirectedISLabel::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  DirectedISLabel index = std::move(built).value();
  // Each family has one label per vertex; self entry present.
  ASSERT_EQ(index.out_labels().size(), g.NumVertices());
  ASSERT_EQ(index.in_labels().size(), g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    bool self_out = false, self_in = false;
    for (const auto& e : index.out_labels()[v]) self_out |= (e.node == v);
    for (const auto& e : index.in_labels()[v]) self_in |= (e.node == v);
    EXPECT_TRUE(self_out);
    EXPECT_TRUE(self_in);
  }
  EXPECT_GT(index.TotalLabelEntries(), 2u * g.NumVertices() - 1);
}

TEST(Directed, StronglyConnectedCycleExact) {
  std::vector<Arc> arcs;
  const VertexId n = 60;
  for (VertexId v = 0; v < n; ++v) arcs.emplace_back(v, (v + 1) % n, 1);
  DiGraph g = DiGraph::FromArcs(std::move(arcs), n);
  auto built = DirectedISLabel::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  DirectedISLabel index = std::move(built).value();
  Distance d;
  ASSERT_TRUE(index.Query(0, 30, &d).ok());
  EXPECT_EQ(d, 30u);
  ASSERT_TRUE(index.Query(30, 0, &d).ok());
  EXPECT_EQ(d, 30u);
  ASSERT_TRUE(index.Query(0, 59, &d).ok());
  EXPECT_EQ(d, 59u);
}

}  // namespace
}  // namespace islabel
