// Shared EventLog sink helpers for tests.
//
// The sanitizer CI jobs export ISLABEL_EVENT_LOG pointing into the
// uploaded log directory; every test-constructed EventLog that uses
// CapturingSink() tees its rendered JSON lines there, so a sanitizer
// failure's artifact carries the structured events that led up to it.

#ifndef ISLABEL_TESTS_OBS_TEST_UTIL_H_
#define ISLABEL_TESTS_OBS_TEST_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace islabel {
namespace obs_test {

/// Appends one rendered event line to $ISLABEL_EVENT_LOG when set.
/// The stdio stream lock keeps concurrent lines whole; the stream is
/// opened once and intentionally leaked (the OS flushes on exit, and
/// sanitizer aborts keep what was already flushed).
inline void TeeToEnvLog(const std::string& line) {
  static std::FILE* f = [] {
    const char* path = std::getenv("ISLABEL_EVENT_LOG");
    return path != nullptr ? std::fopen(path, "a") : nullptr;
  }();
  if (f != nullptr) {
    std::fprintf(f, "%s\n", line.c_str());
    std::fflush(f);
  }
}

/// An EventLog sink that records every line into `out` (under `mu`,
/// both owned by the caller and outliving the log) and tees it to
/// $ISLABEL_EVENT_LOG.
inline std::function<void(const std::string&)> CapturingSink(
    Mutex* mu, std::vector<std::string>* out) {
  return [mu, out](const std::string& line) {
    TeeToEnvLog(line);
    MutexLock lock(mu);
    out->push_back(line);
  };
}

}  // namespace obs_test
}  // namespace islabel

#endif  // ISLABEL_TESTS_OBS_TEST_UTIL_H_
