// Shortest-path reconstruction tests (§8.1): returned paths must be
// genuine paths of the original graph whose length equals the exact
// distance.

#include <gtest/gtest.h>

#include <tuple>

#include "baseline/dijkstra.h"
#include "core/index.h"
#include "tests/test_common.h"

namespace islabel {
namespace {

using testing::Family;
using testing::MakeTestGraph;
using testing::SampleQueryPairs;

class PathTest : public ::testing::TestWithParam<
                     std::tuple<Family, bool, bool, int>> {};

TEST_P(PathTest, PathsAreValidAndShortest) {
  const auto [family, weighted, full_hierarchy, seed] = GetParam();
  Graph g = MakeTestGraph(family, 120, weighted, seed);
  IndexOptions opts;
  opts.full_hierarchy = full_hierarchy;
  auto built = ISLabelIndex::Build(g, opts);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();

  for (auto [s, t] : SampleQueryPairs(g, 80, seed * 31 + 5)) {
    std::vector<VertexId> path;
    Distance dist = 0;
    ASSERT_TRUE(index.ShortestPath(s, t, &path, &dist).ok())
        << "(" << s << "," << t << ")";
    const Distance expect = DijkstraP2P(g, s, t);
    ASSERT_EQ(dist, expect) << "(" << s << "," << t << ")";
    testing::AssertValidPath(g, s, t, path, dist);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, PathTest,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi, Family::kRMat,
                                         Family::kGrid, Family::kStar,
                                         Family::kTree, Family::kCycle,
                                         Family::kBarabasiAlbert,
                                         Family::kDisconnected),
                       ::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 2)),
    ([](const auto& info) {
      const auto [family, weighted, full, seed] = info.param;
      return std::string(testing::FamilyName(family)) +
             (weighted ? "_W" : "_U") + (full ? "_Full" : "_Klevel") + "_s" +
             std::to_string(seed);
    }));

TEST(Path, SameVertexPath) {
  Graph g = MakeTestGraph(Family::kGrid, 64, false, 1);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  std::vector<VertexId> path;
  Distance dist = 0;
  ASSERT_TRUE(index.ShortestPath(7, 7, &path, &dist).ok());
  EXPECT_EQ(dist, 0u);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 7u);
}

TEST(Path, AdjacentVertices) {
  EdgeList el(2);
  el.Add(0, 1, 9);
  Graph g = Graph::FromEdgeList(el);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  std::vector<VertexId> path;
  Distance dist = 0;
  ASSERT_TRUE(index.ShortestPath(0, 1, &path, &dist).ok());
  EXPECT_EQ(dist, 9u);
  EXPECT_EQ(path, (std::vector<VertexId>{0, 1}));
}

TEST(Path, UnreachableGivesEmptyPath) {
  EdgeList el(4);
  el.Add(0, 1, 1);
  el.Add(2, 3, 1);
  Graph g = Graph::FromEdgeList(el);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  std::vector<VertexId> path;
  Distance dist = 0;
  ASSERT_TRUE(index.ShortestPath(0, 3, &path, &dist).ok());
  EXPECT_EQ(dist, kInfDistance);
  EXPECT_TRUE(path.empty());
}

TEST(Path, RequiresVias) {
  Graph g = MakeTestGraph(Family::kErdosRenyi, 60, false, 3);
  IndexOptions opts;
  opts.keep_vias = false;
  auto built = ISLabelIndex::Build(g, opts);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  std::vector<VertexId> path;
  Distance dist = 0;
  Status st = index.ShortestPath(0, 1, &path, &dist);
  // Either the core has no edges (then paths still work) or the call must
  // be rejected; on this ER graph the core is non-trivial.
  EXPECT_TRUE(st.IsFailedPrecondition());
}

TEST(Path, PaperExampleK2Path) {
  // Example 6: dist(c, i) = 3; the only shortest path is c-b-e-i.
  Graph g = testing::PaperFigure1Graph();
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  std::vector<VertexId> path;
  Distance dist = 0;
  ASSERT_TRUE(index.ShortestPath(testing::kC, testing::kI, &path, &dist).ok());
  EXPECT_EQ(dist, 3u);
  EXPECT_EQ(path, (std::vector<VertexId>{testing::kC, testing::kB,
                                         testing::kE, testing::kI}));
}

TEST(Path, LongWeightedPathExpandsFully) {
  // A long path graph collapses into few deeply-nested augmenting edges,
  // stressing the recursive expansion.
  EdgeList el = GeneratePath(400);
  Rng rng(5);
  AssignUniformWeights(&el, 1, 6, &rng);
  Graph g = Graph::FromEdgeList(el);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  std::vector<VertexId> path;
  Distance dist = 0;
  ASSERT_TRUE(index.ShortestPath(0, 399, &path, &dist).ok());
  ASSERT_EQ(path.size(), 400u);
  testing::AssertValidPath(g, 0, 399, path, dist);
}

}  // namespace
}  // namespace islabel
