// Tests for the replicated serving tier (src/repl/): the snapshot
// container, the fault-injection harness, the primary/replica protocol
// over a real loopback server, and the ReplicaSetClient failover path.
//
// The centerpiece is the deterministic failover acceptance test: one
// primary and two replicas on loopback, time from a ManualClock and
// faults from a FaultInjector, the primary killed mid-snapshot-transfer.
// The replicas must keep serving answers bit-identical to fresh engines
// of the generations they hold, the partial snapshot must never be
// installed, and a later reload must propagate once the primary
// recovers.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/partitioned_index.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "obs_test_util.h"
#include "repl/fault_injector.h"
#include "repl/primary.h"
#include "repl/replica.h"
#include "repl/replica_set_client.h"
#include "repl/snapshot.h"
#include "repl/transport.h"
#include "server/protocol.h"
#include "server/tcp_server.h"
#include "tests/test_common.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/retry.h"

namespace islabel {
namespace {

namespace fs = std::filesystem;

using repl::Channel;
using repl::Connection;
using repl::Crc32;
using repl::FaultInjectingTransport;
using repl::FaultInjector;
using repl::FaultRule;
using repl::PrimaryHooks;
using repl::ReplicaAgent;
using repl::ReplicaOptions;
using repl::ReplicaSetClient;
using repl::ReplicaSetOptions;
using repl::SnapshotInfo;
using repl::TcpTransport;
using server::TcpServer;
using server::TcpServerOptions;
using testing::Family;
using testing::MakeTestGraph;
using testing::SampleQueryPairs;

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, MatchesKnownVectors) {
  // The IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST(Crc32Test, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t a = Crc32(std::string_view(data).substr(0, split));
    const std::uint32_t whole =
        repl::Crc32Extend(a, std::string_view(data).substr(split));
    EXPECT_EQ(whole, Crc32(data)) << "split at " << split;
  }
}

// ---------------------------------------------------------------------------
// Snapshot container
// ---------------------------------------------------------------------------

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("islabel_repl_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  void WriteFile(const std::string& rel, const std::string& contents) {
    const fs::path p = fs::path(dir_) / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p, std::ios::binary);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    ASSERT_TRUE(out.good());
  }

  static std::string ReadFile(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  std::string dir_;
};

TEST_F(SnapshotTest, RoundTripsADirectoryTree) {
  WriteFile("src/partition.islp", "manifest bytes\x00\x01\x02");
  WriteFile("src/part00000/meta.islm", std::string(1000, 'x'));
  WriteFile("src/part00000/labels.isl", "labels\nwith\nnewlines\n");
  WriteFile("src/empty.bin", "");

  std::string blob;
  ASSERT_TRUE(repl::BuildSnapshot(Path("src"), &blob).ok());
  SnapshotInfo info;
  ASSERT_TRUE(repl::ValidateSnapshot(blob, &info).ok());
  EXPECT_EQ(info.file_count, 4u);
  EXPECT_EQ(info.paths,
            (std::vector<std::string>{"empty.bin", "part00000/labels.isl",
                                      "part00000/meta.islm",
                                      "partition.islp"}));

  ASSERT_TRUE(repl::InstallSnapshot(blob, Path("dst")).ok());
  for (const std::string& rel : info.paths) {
    EXPECT_EQ(ReadFile(fs::path(Path("dst")) / rel),
              ReadFile(fs::path(Path("src")) / rel))
        << rel;
  }
}

TEST_F(SnapshotTest, BuildIsDeterministic) {
  WriteFile("src/b", "bbb");
  WriteFile("src/a", "aaa");
  WriteFile("src/sub/c", "ccc");
  std::string first, second;
  ASSERT_TRUE(repl::BuildSnapshot(Path("src"), &first).ok());
  ASSERT_TRUE(repl::BuildSnapshot(Path("src"), &second).ok());
  EXPECT_EQ(first, second);
}

TEST_F(SnapshotTest, RejectsTrailingGarbage) {
  WriteFile("src/f", "data");
  std::string blob;
  ASSERT_TRUE(repl::BuildSnapshot(Path("src"), &blob).ok());
  blob += '\0';
  const Status st = repl::ValidateSnapshot(blob, nullptr);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(SnapshotTest, RejectedInstallLeavesDestinationUntouched) {
  WriteFile("src/f", "data");
  std::string blob;
  ASSERT_TRUE(repl::BuildSnapshot(Path("src"), &blob).ok());
  blob[blob.size() / 2] ^= 0x40;  // flip a payload bit
  EXPECT_FALSE(repl::InstallSnapshot(blob, Path("dst")).ok());
  EXPECT_FALSE(fs::exists(Path("dst")));
}

TEST_F(SnapshotTest, MissingDirectoryIsAnError) {
  std::string blob;
  EXPECT_FALSE(repl::BuildSnapshot(Path("nope"), &blob).ok());
}

// ---------------------------------------------------------------------------
// Replication fixture: a real catalog-mode primary on loopback
// ---------------------------------------------------------------------------

/// Blocking loopback client for asserting served answers directly.
class LineClient {
 public:
  explicit LineClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  std::string Ask(const std::string& line) {
    std::string data = line + "\n";
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return "<send-failed>";
      off += static_cast<std::size_t>(n);
    }
    return ReadOne();
  }

  /// Sends `line` and reads the multi-line response through its "# EOF"
  /// terminator (the tracez / metrics shape). Single-line error
  /// responses return as a one-element vector.
  std::vector<std::string> AskMulti(const std::string& line) {
    std::vector<std::string> lines;
    lines.push_back(Ask(line));
    if (lines.back().rfind("error:", 0) == 0) return lines;
    while (lines.back() != "# EOF" && lines.back() != "<eof>" &&
           lines.back() != "<send-failed>") {
      lines.push_back(ReadOne());
    }
    return lines;
  }

 private:
  std::string ReadOne() {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string out = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return out;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "<eof>";
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

class ReplTest : public SnapshotTest {
 protected:
  void SetUp() override {
    SnapshotTest::SetUp();
    // v1: a weighted grid. v2: the same grid plus a unit shortcut edge
    // between the far corners, so v1/v2 answers provably differ.
    graph_v1_ = MakeTestGraph(Family::kGrid, 80, /*weighted=*/true, 301);
    EdgeList el = graph_v1_.ToEdgeList();
    el.Add(0, graph_v1_.NumVertices() - 1, 1);
    graph_v2_ = Graph::FromEdgeList(std::move(el));

    SaveDataset(graph_v1_, "d");
    SaveDataset(graph_v1_, "v1_copy");

    ASSERT_TRUE(primary_catalog_.Add("d", Path("d")).ok());
    ASSERT_TRUE(primary_catalog_.WaitReady().ok());
    primary_hooks_ = std::make_unique<PrimaryHooks>(&primary_catalog_,
                                                    /*chunk_bytes=*/512);
    StartPrimary(/*port=*/0);
  }

  void TearDown() override {
    StopPrimary();
    SnapshotTest::TearDown();
  }

  void SaveDataset(const Graph& g, const std::string& name) {
    auto built = PartitionedIndex::Build(g);
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE(built->Save(Path(name)).ok());
  }

  void StartPrimary(std::uint16_t port) {
    TcpServerOptions opts;
    opts.port = port;
    opts.num_workers = 2;
    primary_server_ =
        std::make_unique<TcpServer>(&primary_catalog_, "d", opts);
    primary_server_->SetReplicationHooks(primary_hooks_.get());
    ASSERT_TRUE(primary_server_->Start().ok());
    primary_port_ = primary_server_->port();
    primary_endpoint_ = "127.0.0.1:" + std::to_string(primary_port_);
  }

  void StopPrimary() {
    if (primary_server_ != nullptr) {
      primary_server_->Stop();
      primary_server_->Wait();
      primary_server_.reset();
    }
  }

  /// Publishes v2 on the primary: overwrite the dataset directory and
  /// hot-swap reload (generation 1 → 2).
  void PublishV2() {
    fs::remove_all(Path("d"));
    SaveDataset(graph_v2_, "d");
    ASSERT_TRUE(primary_catalog_.Reload("d").ok());
    ASSERT_EQ(primary_catalog_.Generation("d"), 2u);
  }

  /// One replica: its own catalog, snapshot root, agent, and serving
  /// TcpServer wired to the agent's replication hooks.
  struct Replica {
    Catalog catalog;
    std::unique_ptr<ReplicaAgent> agent;
    std::unique_ptr<TcpServer> server;
    std::string endpoint;
  };

  std::unique_ptr<Replica> MakeReplica(const std::string& tag,
                                       repl::Transport* transport,
                                       Clock* clock, Rng* rng,
                                       const std::string& default_name = "d",
                                       obs::FlightRecorder* recorder = nullptr,
                                       obs::EventLog* event_log = nullptr) {
    auto r = std::make_unique<Replica>();
    ReplicaOptions opts;
    opts.primary = primary_endpoint_;
    opts.root = Path("root_" + tag);
    opts.poll_interval_ms = 1000;
    opts.request_timeout_ms = 5000;
    opts.primary_timeout_ms = 3000;
    opts.event_log = event_log;
    r->agent = std::make_unique<ReplicaAgent>(&r->catalog, transport, clock,
                                              rng, opts);
    TcpServerOptions sopts;
    sopts.port = 0;
    sopts.num_workers = 2;
    sopts.flight_recorder = recorder;
    r->server = std::make_unique<TcpServer>(&r->catalog, default_name, sopts);
    r->server->SetReplicationHooks(r->agent.get());
    EXPECT_TRUE(r->server->Start().ok());
    r->endpoint = "127.0.0.1:" + std::to_string(r->server->port());
    return r;
  }

  static void StopReplica(Replica* r) {
    if (r->server != nullptr) {
      r->server->Stop();
      r->server->Wait();
    }
  }

  /// Expected response lines for `pairs` from an independently loaded
  /// copy of the saved dataset at `name` — the bit-identical ground
  /// truth served answers are compared against.
  std::vector<std::string> FreshEngineLines(
      const std::string& name,
      const std::vector<std::pair<VertexId, VertexId>>& pairs) {
    auto fresh = PartitionedIndex::Load(Path(name));
    EXPECT_TRUE(fresh.ok());
    std::vector<std::string> lines;
    lines.reserve(pairs.size());
    for (const auto& [s, t] : pairs) {
      Distance d = 0;
      EXPECT_TRUE(fresh->Query(s, t, &d).ok());
      lines.push_back(server::FormatDistance(d));
    }
    return lines;
  }

  /// Asserts that the server at `port` answers every pair exactly like
  /// the fresh engine over the `name` dataset directory.
  void ExpectServesGeneration(
      std::uint16_t port, const std::string& name,
      const std::vector<std::pair<VertexId, VertexId>>& pairs) {
    const std::vector<std::string> expect = FreshEngineLines(name, pairs);
    LineClient client(port);
    ASSERT_TRUE(client.connected());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(client.Ask(std::to_string(pairs[i].first) + " " +
                           std::to_string(pairs[i].second)),
                expect[i])
          << "pair " << i << " against " << name;
    }
  }

  Graph graph_v1_;
  Graph graph_v2_;
  Catalog primary_catalog_;
  std::unique_ptr<PrimaryHooks> primary_hooks_;
  std::unique_ptr<TcpServer> primary_server_;
  std::uint16_t primary_port_ = 0;
  std::string primary_endpoint_;
};

// ---------------------------------------------------------------------------
// Protocol verbs on the primary
// ---------------------------------------------------------------------------

TEST_F(ReplTest, PrimaryAnswersVersionHeartbeatAndStats) {
  LineClient client(primary_port_);
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.Ask("version"), "version: d:1");
  EXPECT_EQ(client.Ask("heartbeat"), "pong");
  EXPECT_EQ(client.Ask("replicate d 1"), "uptodate d 1");
  EXPECT_EQ(client.Ask("replicate nope 0"),
            "error: NotFound: unknown dataset nope");
  EXPECT_EQ(client.Ask("replicate d"), "error: usage: replicate NAME GEN");
  const std::string stats = client.Ask("stats");
  EXPECT_NE(stats.find("repl_primary=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("repl_heartbeats=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("d.generation=1"), std::string::npos) << stats;
}

TEST_F(ReplTest, ReplicationVerbsRefusedWithoutHooks) {
  TcpServerOptions opts;
  opts.port = 0;
  TcpServer bare(&primary_catalog_, "d", opts);
  ASSERT_TRUE(bare.Start().ok());
  LineClient client(bare.port());
  EXPECT_EQ(client.Ask("version"),
            "error: NotSupported: replication not enabled");
  bare.Stop();
  bare.Wait();
}

// ---------------------------------------------------------------------------
// Fault injector against a live connection
// ---------------------------------------------------------------------------

class FaultTest : public ReplTest {
 protected:
  SystemClock clock_;
  TcpTransport tcp_;
  FaultInjector faults_;

  std::unique_ptr<Channel> Open() {
    FaultInjectingTransport transport(&tcp_, &faults_);
    auto conn = transport.Connect(primary_endpoint_, 5000);
    EXPECT_TRUE(conn.ok());
    return std::make_unique<Channel>(std::move(conn).value());
  }
};

TEST_F(FaultTest, FailConnect) {
  faults_.AddRule({FaultRule::Kind::kFailConnect, "", 0, 1});
  FaultInjectingTransport transport(&tcp_, &faults_);
  EXPECT_TRUE(transport.Connect(primary_endpoint_, 5000)
                  .status()
                  .IsUnavailable());
  EXPECT_EQ(faults_.stats().connects_failed, 1u);
  // The rule fired once; the next connect goes through.
  EXPECT_TRUE(transport.Connect(primary_endpoint_, 5000).ok());
}

TEST_F(FaultTest, DropSendLosesExactlyOneRequest) {
  auto ch = Open();
  faults_.AddRule({FaultRule::Kind::kDropSend, "", 0, 1});
  ASSERT_TRUE(ch->SendLine("heartbeat").ok());  // silently dropped
  ASSERT_TRUE(ch->SendLine("heartbeat").ok());  // delivered
  std::string line;
  const Deadline deadline = Deadline::After(5000, &clock_);
  ASSERT_TRUE(ch->ReadLine(&line, deadline).ok());
  EXPECT_EQ(line, "pong");
  EXPECT_EQ(faults_.stats().sends_dropped, 1u);
  // Exactly one response: the dropped request never reached the server.
  faults_.AddRule({FaultRule::Kind::kTimeoutRecv, "", 0, 1});
  EXPECT_TRUE(ch->ReadLine(&line, deadline).IsDeadlineExceeded());
}

TEST_F(FaultTest, DuplicateSendYieldsTwoResponses) {
  auto ch = Open();
  faults_.AddRule({FaultRule::Kind::kDuplicateSend, "", 0, 1});
  ASSERT_TRUE(ch->SendLine("heartbeat").ok());
  std::string line;
  const Deadline deadline = Deadline::After(5000, &clock_);
  ASSERT_TRUE(ch->ReadLine(&line, deadline).ok());
  EXPECT_EQ(line, "pong");
  ASSERT_TRUE(ch->ReadLine(&line, deadline).ok());
  EXPECT_EQ(line, "pong");
  EXPECT_EQ(faults_.stats().sends_duplicated, 1u);
}

TEST_F(FaultTest, PartialSendSeversTheConnection) {
  auto ch = Open();
  faults_.AddRule({FaultRule::Kind::kPartialSend, "", 4, 1});
  EXPECT_TRUE(ch->SendLine("heartbeat").IsUnavailable());
  EXPECT_EQ(faults_.stats().sends_truncated, 1u);
}

TEST_F(FaultTest, CorruptRecvByteFlipsTheResponse) {
  auto ch = Open();
  ASSERT_TRUE(ch->SendLine("heartbeat").ok());
  faults_.AddRule({FaultRule::Kind::kCorruptRecvByte, "", 0, 1});
  std::string line;
  const Deadline deadline = Deadline::After(5000, &clock_);
  ASSERT_TRUE(ch->ReadLine(&line, deadline).ok());
  EXPECT_EQ(line, "qong");  // 'p' ^ 0x01
  EXPECT_EQ(faults_.stats().bytes_corrupted, 1u);
}

TEST_F(FaultTest, CutAfterRecvBytesSeversMidStream) {
  auto ch = Open();
  ASSERT_TRUE(ch->SendLine("heartbeat").ok());
  faults_.AddRule({FaultRule::Kind::kCutAfterRecvBytes, "", 2, 1});
  std::string line;
  const Deadline deadline = Deadline::After(5000, &clock_);
  // Only "po" is delivered before the cut; the line never completes.
  EXPECT_TRUE(ch->ReadLine(&line, deadline).IsUnavailable());
  EXPECT_EQ(faults_.stats().connections_cut, 1u);
}

// ---------------------------------------------------------------------------
// Replica sync and install
// ---------------------------------------------------------------------------

TEST_F(ReplTest, ReplicaBootstrapsDiscoverInstallServe) {
  ManualClock clock(0);
  Rng rng(11);
  TcpTransport tcp;
  auto r = MakeReplica("r1", &tcp, &clock, &rng);

  // Before the first sync the replica has no datasets and says so.
  {
    LineClient client(r->server->port());
    EXPECT_EQ(client.Ask("1 2"), "error: NotFound: unknown dataset d");
  }

  const Status synced = r->agent->SyncNow();
  ASSERT_TRUE(synced.ok()) << synced.ToString();
  EXPECT_EQ(r->catalog.Generation("d"), 1u);
  EXPECT_TRUE(fs::exists(Path("root_r1") + "/d/gen-1"));
  const ReplicaAgent::Stats stats = r->agent->stats();
  EXPECT_EQ(stats.pulls, 1u);
  EXPECT_EQ(stats.installs, 1u);
  EXPECT_EQ(stats.lag_gens, 0u);
  EXPECT_TRUE(stats.primary_up);

  // Served answers are bit-identical to a fresh engine over v1 (new
  // connection: the old session cached the unknown-dataset handle miss).
  ExpectServesGeneration(r->server->port(), "v1_copy",
                         SampleQueryPairs(graph_v1_, 40, 401));

  // The replica's own serving face answers the replication verbs.
  LineClient client(r->server->port());
  EXPECT_EQ(client.Ask("version"), "version: d:1");
  EXPECT_EQ(client.Ask("heartbeat"), "pong");
  EXPECT_EQ(client.Ask("replicate d 0"),
            "error: NotSupported: replica does not serve snapshots (d)");
  const std::string stats_line = client.Ask("stats");
  EXPECT_NE(stats_line.find("repl_replica=1"), std::string::npos);
  EXPECT_NE(stats_line.find("repl_lag_gens=0"), std::string::npos);

  StopReplica(r.get());
}

TEST_F(ReplTest, BareQueriesResolveTheOnlyDatasetWithoutDefault) {
  // A real replica starts with an empty catalog and no default dataset
  // name (it discovers names at sync time), yet failover clients send
  // bare "S T" lines. Once exactly one dataset is hosted the choice is
  // unambiguous and the dispatcher must serve it.
  ManualClock clock(0);
  Rng rng(23);
  TcpTransport tcp;
  auto r = MakeReplica("r_nodefault", &tcp, &clock, &rng,
                       /*default_name=*/"");
  {
    LineClient client(r->server->port());
    const std::string pre = client.Ask("1 2");
    EXPECT_NE(pre.find("error: FailedPrecondition: no dataset selected"),
              std::string::npos)
        << pre;
  }
  ASSERT_TRUE(r->agent->SyncNow().ok());
  ExpectServesGeneration(r->server->port(), "v1_copy",
                         SampleQueryPairs(graph_v1_, 10, 409));
  StopReplica(r.get());
}

TEST_F(ReplTest, SecondSyncIsUptodateAndReloadPropagates) {
  ManualClock clock(0);
  Rng rng(12);
  TcpTransport tcp;
  auto r = MakeReplica("r1", &tcp, &clock, &rng);
  ASSERT_TRUE(r->agent->SyncNow().ok());
  ASSERT_TRUE(r->agent->SyncNow().ok());
  EXPECT_EQ(r->agent->stats().pulls, 1u) << "already current: no re-pull";

  PublishV2();
  ASSERT_TRUE(r->agent->SyncNow().ok());
  EXPECT_EQ(r->catalog.Generation("d"), 2u);
  EXPECT_TRUE(fs::exists(Path("root_r1") + "/d/gen-2"));
  EXPECT_FALSE(fs::exists(Path("root_r1") + "/d/gen-1"))
      << "superseded generation cleaned up";
  ExpectServesGeneration(r->server->port(), "d",
                         SampleQueryPairs(graph_v2_, 40, 402));
  StopReplica(r.get());
}

TEST_F(ReplTest, TickHonorsPollIntervalAndBackoff) {
  ManualClock clock(0);
  Rng rng(13);
  TcpTransport tcp;
  auto r = MakeReplica("r1", &tcp, &clock, &rng);

  EXPECT_TRUE(r->agent->Tick());   // due immediately at t=0
  EXPECT_FALSE(r->agent->Tick());  // next poll is 1000ms out
  clock.AdvanceMs(999);
  EXPECT_FALSE(r->agent->Tick());
  clock.AdvanceMs(1);
  EXPECT_TRUE(r->agent->Tick());
  EXPECT_EQ(r->agent->stats().polls, 2u);
  StopReplica(r.get());
}

TEST_F(ReplTest, CorruptedStreamIsRejectedAndRetrySucceeds) {
  ManualClock clock(0);
  Rng rng(14);
  TcpTransport tcp;
  FaultInjector faults;
  FaultInjectingTransport transport(&tcp, &faults);
  auto r = MakeReplica("r1", &transport, &clock, &rng);

  // Flip one byte deep in the snapshot stream (past the version
  // exchange and the headers, inside chunk payload).
  faults.AddRule({FaultRule::Kind::kCorruptRecvByte, "", 700, 1});
  const Status st = r->agent->SyncNow();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(r->catalog.Generation("d"), 0u) << "corrupt stream installed";
  EXPECT_FALSE(fs::exists(Path("root_r1") + "/d/gen-1"));

  // The rule is spent; the retry pulls a clean stream.
  ASSERT_TRUE(r->agent->SyncNow().ok());
  EXPECT_EQ(r->catalog.Generation("d"), 1u);
  EXPECT_EQ(r->agent->stats().failures, 1u);
  StopReplica(r.get());
}

// ---------------------------------------------------------------------------
// The deterministic failover acceptance test
// ---------------------------------------------------------------------------

TEST_F(ReplTest, FailoverMidTransferKeepsReplicasServing) {
  ManualClock clock(0);
  Rng rng1(21), rng2(22), rng_client(23);
  TcpTransport tcp;
  FaultInjector faults1, faults2;
  FaultInjectingTransport transport1(&tcp, &faults1);
  FaultInjectingTransport transport2(&tcp, &faults2);
  auto r1 = MakeReplica("r1", &transport1, &clock, &rng1);
  auto r2 = MakeReplica("r2", &transport2, &clock, &rng2);

  // Both replicas bootstrap to generation 1.
  ASSERT_TRUE(r1->agent->SyncNow().ok());
  ASSERT_TRUE(r2->agent->SyncNow().ok());

  // The primary publishes generation 2. Replica 1 syncs it cleanly;
  // replica 2's transfer is severed mid-stream (the primary "dies"
  // partway through shipping the snapshot) and the primary then goes
  // down for real.
  PublishV2();
  ASSERT_TRUE(r1->agent->SyncNow().ok());
  ASSERT_EQ(r1->catalog.Generation("d"), 2u);

  // Cut after 600 bytes delivered on replica 2's next connection: past
  // the version reply and the snapshot/chunk headers (chunk_bytes=512),
  // inside the stream — a mid-transfer kill.
  faults2.AddRule({FaultRule::Kind::kCutAfterRecvBytes, "", 600, 1});
  const Status cut = r2->agent->SyncNow();
  EXPECT_FALSE(cut.ok());
  EXPECT_EQ(faults2.stats().connections_cut, 1u);
  StopPrimary();

  // The partial snapshot must never be installed: replica 2 still
  // serves generation 1, and no gen-2 directory exists under its root.
  EXPECT_EQ(r2->catalog.Generation("d"), 1u);
  EXPECT_FALSE(fs::exists(Path("root_r2") + "/d/gen-2"));

  // Both replicas keep serving, each bit-identical to a fresh engine of
  // the generation it holds (stale-but-consistent for replica 2).
  const auto pairs_v1 = SampleQueryPairs(graph_v1_, 40, 403);
  const auto pairs_v2 = SampleQueryPairs(graph_v2_, 40, 404);
  ExpectServesGeneration(r1->server->port(), "d", pairs_v2);
  ExpectServesGeneration(r2->server->port(), "v1_copy", pairs_v1);

  // Replica 2 notices the primary is gone once the silence outlives
  // primary_timeout_ms; queries still succeed throughout.
  EXPECT_FALSE(r2->agent->SyncNow().ok());
  clock.AdvanceMs(3001);
  EXPECT_FALSE(r2->agent->primary_up());

  // A failover-aware client spread over [dead primary, r1, r2] keeps
  // getting answers; the dead endpoint is routed around.
  ReplicaSetOptions copts;
  copts.endpoints = {primary_endpoint_, r1->endpoint, r2->endpoint};
  copts.request_timeout_ms = 2000;
  copts.overall_timeout_ms = 4000;
  copts.sleep_ms = [&clock](std::uint64_t ms) { clock.AdvanceMs(ms); };
  ReplicaSetClient client(&tcp, &clock, &rng_client, copts);
  const std::vector<std::string> v1_lines =
      FreshEngineLines("v1_copy", pairs_v1);
  const std::vector<std::string> v2_lines = FreshEngineLines("d", pairs_v1);
  for (std::size_t i = 0; i < pairs_v1.size(); ++i) {
    Result<std::string> got =
        client.Query(std::to_string(pairs_v1[i].first) + " " +
                     std::to_string(pairs_v1[i].second));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // Depending on which replica answered, the response matches the v1
    // or the v2 engine — always a consistent generation, never garbage.
    EXPECT_TRUE(*got == v1_lines[i] || *got == v2_lines[i])
        << "pair " << i << ": got '" << *got << "'";
  }
  EXPECT_GT(client.failovers(), 0u);
  for (const auto& ep : client.endpoint_stats()) {
    if (ep.endpoint == primary_endpoint_) {
      EXPECT_FALSE(ep.healthy);
    }
  }

  // Recovery: the primary comes back on the same port; replica 2's next
  // sync pulls the generation it missed and converges with replica 1.
  StartPrimary(primary_port_);
  ASSERT_TRUE(r2->agent->SyncNow().ok());
  EXPECT_EQ(r2->catalog.Generation("d"), 2u);
  ExpectServesGeneration(r2->server->port(), "d", pairs_v2);
  EXPECT_EQ(r2->agent->stats().lag_gens, 0u);
  EXPECT_TRUE(r2->agent->primary_up());

  StopReplica(r1.get());
  StopReplica(r2.get());
}

// ---------------------------------------------------------------------------
// ReplicaSetClient
// ---------------------------------------------------------------------------

TEST_F(ReplTest, ReplicaSetClientSpreadsAndFailsOver) {
  ManualClock clock(0);
  Rng rng(31), rng_client(32);
  TcpTransport tcp;
  auto r = MakeReplica("r1", &tcp, &clock, &rng);
  ASSERT_TRUE(r->agent->SyncNow().ok());

  ReplicaSetOptions opts;
  opts.endpoints = {primary_endpoint_, r->endpoint};
  opts.request_timeout_ms = 2000;
  opts.overall_timeout_ms = 4000;
  opts.sleep_ms = [&clock](std::uint64_t ms) { clock.AdvanceMs(ms); };
  ReplicaSetClient client(&tcp, &clock, &rng_client, opts);

  EXPECT_EQ(client.CheckHeartbeats(), 2u);
  const auto pairs = SampleQueryPairs(graph_v1_, 20, 405);
  const std::vector<std::string> expect =
      FreshEngineLines("v1_copy", pairs);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    Result<std::string> got =
        client.Query(std::to_string(pairs[i].first) + " " +
                     std::to_string(pairs[i].second));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, expect[i]);
  }
  // Round-robin: both endpoints served some requests.
  for (const auto& ep : client.endpoint_stats()) {
    EXPECT_GT(ep.requests_ok, 0u) << ep.endpoint;
  }

  // Kill the primary: queries fail over to the replica without error.
  StopPrimary();
  const std::string expect_12 =
      FreshEngineLines("v1_copy", {{1, 2}}).front();
  for (int i = 0; i < 4; ++i) {
    Result<std::string> got = client.Query("1 2");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, expect_12);
  }
  EXPECT_EQ(client.CheckHeartbeats(), 1u);
  StopReplica(r.get());
}

TEST(ReplicaSetClientTest, BacksOffDeterministicallyWhenAllDown) {
  // Every connect refused by the injector: no sockets, no sleeps. The
  // recorded inter-round delays must follow the seeded backoff schedule
  // and the query must end Unavailable at the overall deadline.
  ManualClock clock(0);
  Rng rng(51);
  TcpTransport tcp;
  FaultInjector faults;
  faults.AddRule({FaultRule::Kind::kFailConnect, "", 0, -1});
  FaultInjectingTransport transport(&tcp, &faults);

  ReplicaSetOptions opts;
  opts.endpoints = {"10.255.255.1:1", "10.255.255.2:2"};
  opts.request_timeout_ms = 100;
  opts.overall_timeout_ms = 2000;
  opts.backoff.initial_delay_ms = 100;
  opts.backoff.max_delay_ms = 800;
  opts.backoff.multiplier = 2.0;
  opts.backoff.jitter = 0.0;
  std::vector<std::uint64_t> slept;
  opts.sleep_ms = [&](std::uint64_t ms) {
    slept.push_back(ms);
    clock.AdvanceMs(ms);
  };
  ReplicaSetClient client(&transport, &clock, &rng, opts);

  Result<std::string> got = client.Query("heartbeat");
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsUnavailable());
  // Jitter 0: the schedule is exact — 100, 200, 400, 800, then the
  // 800ms delay would pass the 2000ms deadline and the client gives up.
  EXPECT_EQ(slept, (std::vector<std::uint64_t>{100, 200, 400, 800}));
  EXPECT_GT(faults.stats().connects_failed, 0u);
  EXPECT_EQ(client.failovers(), 0u) << "no endpoint ever answered";
}

// ---------------------------------------------------------------------------
// Distributed tracing across failover (DESIGN.md §17)
// ---------------------------------------------------------------------------

TEST_F(ReplTest, SyncEmitsPullAndInstallEventsUnderOneTraceId) {
  ManualClock clock(0);
  Rng rng(71);
  TcpTransport tcp;
  Mutex mu;
  std::vector<std::string> events;
  obs::EventLogOptions lopts;
  lopts.clock = &clock;
  lopts.sink = obs_test::CapturingSink(&mu, &events);
  obs::EventLog log(lopts);
  auto r = MakeReplica("r_events", &tcp, &clock, &rng, "d",
                       /*recorder=*/nullptr, &log);

  ASSERT_TRUE(r->agent->SyncNow().ok());
  ASSERT_EQ(events.size(), 2u) << "expected exactly pull + install";
  EXPECT_NE(events[0].find("\"event\":\"islabel.repl.pull\""),
            std::string::npos)
      << events[0];
  EXPECT_NE(events[0].find("\"dataset\":\"d\""), std::string::npos);
  EXPECT_NE(events[1].find("\"event\":\"islabel.repl.install\""),
            std::string::npos)
      << events[1];
  // Both events of the sync carry the same minted trace id.
  const std::string key = "\"tid\":\"";
  const std::size_t p0 = events[0].find(key);
  ASSERT_NE(p0, std::string::npos) << events[0];
  const std::string tid = events[0].substr(
      p0 + key.size(), events[0].find('"', p0 + key.size()) - p0 - key.size());
  EXPECT_FALSE(tid.empty());
  EXPECT_NE(tid, "0");
  EXPECT_NE(events[1].find(key + tid + "\""), std::string::npos)
      << "install under a different trace than its pull: " << events[1];

  // A sync against a dead primary emits sync_failed.
  StopPrimary();
  EXPECT_FALSE(r->agent->SyncNow().ok());
  ASSERT_GE(events.size(), 3u);
  EXPECT_NE(events.back().find("\"event\":\"islabel.repl.sync_failed\""),
            std::string::npos)
      << events.back();
  StopReplica(r.get());
}

// The acceptance test for trace stitching: one tid-tagged logical query
// whose first attempts are severed client-side (the response is cut
// mid-line AFTER the server executed it) must appear under the SAME
// trace id in BOTH replicas' flight recorders, retrievable over each
// serving face with `tracez id HEX`. Faults and time are injected, so
// the retry/failover schedule is fully deterministic.
TEST_F(ReplTest, FailoverQueryIsStitchedIntoOneTraceAcrossReplicas) {
  ManualClock clock(0);
  Rng rng1(61), rng2(62), rng_client(63);
  TcpTransport tcp;
  obs::FlightRecorderOptions ropts;
  obs::FlightRecorder rec1(ropts);
  obs::FlightRecorder rec2(ropts);
  auto r1 = MakeReplica("r1", &tcp, &clock, &rng1, "d", &rec1);
  auto r2 = MakeReplica("r2", &tcp, &clock, &rng2, "d", &rec2);
  ASSERT_TRUE(r1->agent->SyncNow().ok());
  ASSERT_TRUE(r2->agent->SyncNow().ok());
  StopPrimary();  // the replicas alone serve the query

  // Each replica's first TWO responses to the client are severed after
  // one delivered byte: both in-endpoint retry attempts fail, forcing a
  // genuine cross-replica failover, and the eventual re-probe succeeds.
  FaultInjector faults;
  FaultInjectingTransport transport(&tcp, &faults);
  faults.AddRule(
      {FaultRule::Kind::kCutAfterRecvBytes, r1->endpoint, 1, 2});
  faults.AddRule(
      {FaultRule::Kind::kCutAfterRecvBytes, r2->endpoint, 1, 2});

  ReplicaSetOptions copts;
  copts.endpoints = {r1->endpoint, r2->endpoint};
  copts.request_timeout_ms = 2000;
  copts.overall_timeout_ms = 8000;
  copts.sleep_ms = [&clock](std::uint64_t ms) { clock.AdvanceMs(ms); };
  ReplicaSetClient client(&transport, &clock, &rng_client, copts);

  const std::string expect = FreshEngineLines("v1_copy", {{1, 2}}).front();
  Result<std::string> got = client.Query("1 2");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, expect);
  EXPECT_GE(client.failovers(), 1u);
  EXPECT_EQ(faults.stats().connections_cut, 4u);

  const std::uint64_t tid = client.last_trace_id();
  ASSERT_NE(tid, 0u);
  const std::string hex = obs::FormatTraceId(tid);

  // The one logical query is retrievable by id from BOTH replicas, and
  // each saw it more than once (its two severed attempts) — the
  // stamped line stitched every retry into one trace.
  for (const Replica* r : {r1.get(), r2.get()}) {
    LineClient scraper(r->server->port());
    ASSERT_TRUE(scraper.connected());
    const std::vector<std::string> lines =
        scraper.AskMulti("tracez id " + hex);
    ASSERT_GE(lines.size(), 3u) << r->endpoint << ": " << lines.front();
    EXPECT_EQ(lines.front().rfind("tracez: ", 0), 0u);
    EXPECT_EQ(lines.back(), "# EOF");
    std::size_t matching = 0;
    for (const std::string& line : lines) {
      if (line.rfind("trace id=" + hex + " ", 0) == 0) {
        ++matching;
        EXPECT_NE(line.find("verb=distance"), std::string::npos) << line;
      }
    }
    EXPECT_GE(matching, 2u) << r->endpoint;
  }

  // A caller-propagated tid is preserved, not re-minted.
  Result<std::string> tagged = client.Query("1 2 tid=abcd");
  ASSERT_TRUE(tagged.ok());
  EXPECT_EQ(client.last_trace_id(), 0xabcdu);
  // And successive untagged queries mint fresh ids.
  ASSERT_TRUE(client.Query("1 2").ok());
  const std::uint64_t tid2 = client.last_trace_id();
  EXPECT_NE(tid2, 0u);
  EXPECT_NE(tid2, tid);

  StopReplica(r1.get());
  StopReplica(r2.get());
}

TEST(ReplicaSetClientTest, NoEndpointsIsInvalidArgument) {
  ManualClock clock(0);
  Rng rng(52);
  TcpTransport tcp;
  ReplicaSetOptions opts;
  ReplicaSetClient client(&tcp, &clock, &rng, opts);
  EXPECT_TRUE(client.Query("x").status().IsInvalidArgument());
}

}  // namespace
}  // namespace islabel
