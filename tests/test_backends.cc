// The pluggable backend layer: CHIndex correctness against Dijkstra,
// save/load round-trips, the registry's auto heuristic, mixed-backend
// partitioned catalogs, manifest corruption handling, and concurrent CH
// querying (the TSan leg for the backend scratch pool).
//
// Every distance assertion here is pinned bit-identical to Dijkstra —
// both CH and IS-LABEL are exact methods, so the backends must agree
// with the oracle AND with each other on every pair.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "backends/ch_index.h"
#include "backends/registry.h"
#include "baseline/dijkstra.h"
#include "catalog/partitioned_index.h"
#include "core/distance_index.h"
#include "core/index.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "tests/test_common.h"
#include "util/random.h"

namespace islabel {
namespace {

using testing::AllFamilies;
using testing::AssertValidPath;
using testing::Family;
using testing::FamilyName;
using testing::MakeTestGraph;
using testing::SampleQueryPairs;

class BackendsDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "islabel_backends_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// CHIndex exactness
// ---------------------------------------------------------------------------

/// Road-like and scale-free regimes, weighted and unweighted: CH must be
/// exact everywhere, not just on the graphs its heuristic prefers.
TEST(CHIndexTest, MatchesDijkstraAcrossFamilies) {
  for (Family family : AllFamilies()) {
    for (bool weighted : {false, true}) {
      SCOPED_TRACE(std::string(FamilyName(family)) +
                   (weighted ? "/weighted" : "/unweighted"));
      Graph g = MakeTestGraph(family, 150, weighted, 17);
      auto built = CHIndex::Build(g);
      ASSERT_TRUE(built.ok()) << built.status().ToString();
      for (const auto& [s, t] : SampleQueryPairs(g, 60, 19)) {
        Distance got = 0;
        ASSERT_TRUE(built->Query(s, t, &got).ok());
        EXPECT_EQ(got, DijkstraP2P(g, s, t)) << "pair (" << s << "," << t
                                             << ")";
      }
    }
  }
}

TEST(CHIndexTest, PathsAreValidAndOptimal) {
  for (Family family : {Family::kGrid, Family::kBarabasiAlbert,
                        Family::kWattsStrogatz, Family::kDisconnected}) {
    SCOPED_TRACE(FamilyName(family));
    Graph g = MakeTestGraph(family, 140, /*weighted=*/true, 23);
    auto built = CHIndex::Build(g);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ASSERT_TRUE(built->has_vias());
    for (const auto& [s, t] : SampleQueryPairs(g, 50, 29)) {
      std::vector<VertexId> path;
      Distance d = 0;
      ASSERT_TRUE(built->ShortestPath(s, t, &path, &d).ok());
      EXPECT_EQ(d, DijkstraP2P(g, s, t));
      AssertValidPath(g, s, t, path, d);
    }
  }
}

TEST(CHIndexTest, RejectsOutOfRangeQueries) {
  Graph g = MakeTestGraph(Family::kGrid, 50, /*weighted=*/true, 3);
  auto built = CHIndex::Build(g);
  ASSERT_TRUE(built.ok());
  Distance d = 0;
  EXPECT_EQ(built->Query(0, g.NumVertices(), &d).code(),
            StatusCode::kOutOfRange);
  std::vector<VertexId> path;
  EXPECT_EQ(built->ShortestPath(g.NumVertices(), 0, &path, &d).code(),
            StatusCode::kOutOfRange);
}

TEST_F(BackendsDirTest, CHSaveLoadRoundTrip) {
  Graph g = MakeTestGraph(Family::kGrid, 130, /*weighted=*/true, 31);
  auto built = CHIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(dir_).ok());

  auto loaded = CHIndex::Load(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumVertices(), built->NumVertices());
  EXPECT_EQ(loaded->num_shortcuts(), built->num_shortcuts());
  EXPECT_EQ(loaded->Info().entries, built->Info().entries);
  for (const auto& [s, t] : SampleQueryPairs(g, 80, 37)) {
    Distance fresh = 0, reloaded = 0;
    ASSERT_TRUE(built->Query(s, t, &fresh).ok());
    ASSERT_TRUE(loaded->Query(s, t, &reloaded).ok());
    EXPECT_EQ(fresh, reloaded);
    std::vector<VertexId> path;
    Distance d = 0;
    ASSERT_TRUE(loaded->ShortestPath(s, t, &path, &d).ok());
    AssertValidPath(g, s, t, path, d);
  }
}

TEST_F(BackendsDirTest, CHLoadRejectsTruncatedFile) {
  Graph g = MakeTestGraph(Family::kGrid, 80, /*weighted=*/true, 41);
  auto built = CHIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(dir_).ok());
  const std::string file = dir_ + "/ch.islc";
  const auto full = std::filesystem::file_size(file);
  std::filesystem::resize_file(file, full / 2);
  auto loaded = CHIndex::Load(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// The registry and the auto heuristic
// ---------------------------------------------------------------------------

TEST(RegistryTest, BackendKindNamesRoundTrip) {
  for (BackendKind kind :
       {BackendKind::kISLabel, BackendKind::kCH, BackendKind::kAuto}) {
    BackendKind parsed;
    ASSERT_TRUE(ParseBackendKind(BackendKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  BackendKind parsed;
  EXPECT_FALSE(ParseBackendKind("nosuchb", &parsed));
  EXPECT_FALSE(ParseBackendKind("", &parsed));
}

/// The documented classifier: bounded-degree grids are road-like → CH;
/// hub-dominated stars are skewed → IS-LABEL.
TEST(RegistryTest, AutoPicksCHForGridsAndISLabelForStars) {
  Graph grid = MakeTestGraph(Family::kGrid, 150, /*weighted=*/true, 5);
  Graph star = MakeTestGraph(Family::kStar, 150, /*weighted=*/true, 5);
  EXPECT_TRUE(LooksRoadLike(ComputeStats(grid)));
  EXPECT_FALSE(LooksRoadLike(ComputeStats(star)));
  EXPECT_EQ(ChooseBackendAuto(grid), BackendKind::kCH);
  EXPECT_EQ(ChooseBackendAuto(star), BackendKind::kISLabel);
}

TEST(RegistryTest, BuildBackendIsExactForBothFamilies) {
  Graph g = MakeTestGraph(Family::kWattsStrogatz, 120, /*weighted=*/true, 7);
  for (BackendKind kind : {BackendKind::kISLabel, BackendKind::kCH}) {
    SCOPED_TRACE(BackendKindName(kind));
    auto built = BuildBackend(kind, g);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    EXPECT_EQ(built.value()->Info().backend, BackendKindName(kind));
    for (const auto& [s, t] : SampleQueryPairs(g, 60, 11)) {
      Distance got = 0;
      ASSERT_TRUE(built.value()->Query(s, t, &got).ok());
      EXPECT_EQ(got, DijkstraP2P(g, s, t));
    }
  }
}

TEST_F(BackendsDirTest, SniffIdentifiesSavedDirs) {
  Graph g = MakeTestGraph(Family::kGrid, 60, /*weighted=*/true, 13);
  const std::string ch_dir = dir_ + "/ch";
  const std::string isl_dir = dir_ + "/isl";
  auto ch = CHIndex::Build(g);
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(ch->Save(ch_dir).ok());
  auto isl = ISLabelIndex::Build(g);
  ASSERT_TRUE(isl.ok());
  ASSERT_TRUE(isl->Save(isl_dir).ok());

  auto sniff_ch = SniffBackendDir(ch_dir);
  ASSERT_TRUE(sniff_ch.ok());
  EXPECT_EQ(sniff_ch.value(), BackendKind::kCH);
  auto sniff_isl = SniffBackendDir(isl_dir);
  ASSERT_TRUE(sniff_isl.ok());
  EXPECT_EQ(sniff_isl.value(), BackendKind::kISLabel);
  EXPECT_EQ(SniffBackendDir(dir_ + "/nope").status().code(),
            StatusCode::kNotFound);
}

/// A plain CH directory (no partition manifest) must be servable through
/// PartitionedIndex::Load's monolithic fallback, same as IS-LABEL dirs.
TEST_F(BackendsDirTest, MonolithicCHDirLoadsAsCatalog) {
  Graph g = MakeTestGraph(Family::kGrid, 100, /*weighted=*/true, 43);
  auto ch = CHIndex::Build(g);
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(ch->Save(dir_).ok());

  auto loaded = PartitionedIndex::Load(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_parts(), 1u);
  EXPECT_EQ(loaded->part_backend(0), BackendKind::kCH);
  for (const auto& [s, t] : SampleQueryPairs(g, 40, 47)) {
    Distance got = 0;
    ASSERT_TRUE(loaded->Query(s, t, &got).ok());
    EXPECT_EQ(got, DijkstraP2P(g, s, t));
  }
}

// ---------------------------------------------------------------------------
// Mixed-backend partitioned catalogs
// ---------------------------------------------------------------------------

/// Two components with opposite structure: a grid (bounded degree →
/// road-like → CH under auto) and a star (hub degree n-1 → IS-LABEL).
/// Returns the combined graph; the grid occupies ids [0, grid_n), the
/// star the rest.
Graph MakeMixedGraph(VertexId* grid_n_out) {
  EdgeList grid = GenerateGrid2D(9, 9);
  const VertexId grid_n = grid.num_vertices();
  EdgeList star = GenerateStar(80);
  EdgeList combined = std::move(grid);
  for (const Edge& e : star.edges()) {
    combined.Add(e.u + grid_n, e.v + grid_n, e.w);
  }
  Rng rng(61);
  AssignUniformWeights(&combined, 1, 8, &rng);
  *grid_n_out = grid_n;
  return Graph::FromEdgeList(std::move(combined));
}

TEST_F(BackendsDirTest, AutoBuildsMixedCatalogPinnedToDijkstra) {
  VertexId grid_n = 0;
  Graph g = MakeMixedGraph(&grid_n);
  PartitionOptions opts;
  opts.backend = BackendKind::kAuto;
  auto built = PartitionedIndex::Build(g, opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_EQ(built->num_parts(), 2u);

  // Auto must split the families: the grid part on CH, the star part on
  // IS-LABEL (parts are ordered by smallest global id → part 0 is grid).
  EXPECT_EQ(built->part_backend(0), BackendKind::kCH);
  EXPECT_EQ(built->part_backend(1), BackendKind::kISLabel);
  EXPECT_EQ(built->Info().backend, "mixed");
  EXPECT_NE(built->BackendSummary().find("p0=ch/"), std::string::npos)
      << built->BackendSummary();
  EXPECT_NE(built->BackendSummary().find("p1=islabel/"), std::string::npos)
      << built->BackendSummary();

  for (const auto& [s, t] : SampleQueryPairs(g, 120, 67)) {
    Distance got = 0;
    ASSERT_TRUE(built->Query(s, t, &got).ok());
    EXPECT_EQ(got, DijkstraP2P(g, s, t)) << "pair (" << s << "," << t << ")";
    std::vector<VertexId> path;
    Distance d = 0;
    ASSERT_TRUE(built->ShortestPath(s, t, &path, &d).ok());
    AssertValidPath(g, s, t, path, d);
  }

  // Round-trip: backends and answers survive Save/Load.
  ASSERT_TRUE(built->Save(dir_).ok());
  auto loaded = PartitionedIndex::Load(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_parts(), 2u);
  EXPECT_EQ(loaded->part_backend(0), BackendKind::kCH);
  EXPECT_EQ(loaded->part_backend(1), BackendKind::kISLabel);
  for (const auto& [s, t] : SampleQueryPairs(g, 80, 71)) {
    Distance fresh = 0, reloaded = 0;
    ASSERT_TRUE(built->Query(s, t, &fresh).ok());
    ASSERT_TRUE(loaded->Query(s, t, &reloaded).ok());
    EXPECT_EQ(fresh, reloaded);
  }
}

TEST_F(BackendsDirTest, ExplicitCHCatalogIsExact) {
  Graph g = MakeTestGraph(Family::kDisconnected, 240, /*weighted=*/true, 73);
  PartitionOptions opts;
  opts.backend = BackendKind::kCH;
  auto built = PartitionedIndex::Build(g, opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  for (std::uint32_t p = 0; p < built->num_parts(); ++p) {
    EXPECT_EQ(built->part_backend(p), BackendKind::kCH);
  }
  EXPECT_EQ(built->Info().backend, "ch");
  for (const auto& [s, t] : SampleQueryPairs(g, 100, 79)) {
    Distance got = 0;
    ASSERT_TRUE(built->Query(s, t, &got).ok());
    EXPECT_EQ(got, DijkstraP2P(g, s, t));
  }
}

/// The satellite contract: a manifest naming a backend this build does
/// not know must fail with Corruption naming the offender — never be
/// misparsed as an IS-LABEL directory.
TEST_F(BackendsDirTest, UnknownBackendNameYieldsCorruption) {
  Graph g = MakeTestGraph(Family::kGrid, 80, /*weighted=*/true, 83);
  auto built = PartitionedIndex::Build(g, {});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(dir_).ok());

  // Patch the manifest in place: "islabel" → "nosuchb" (same length, so
  // every offset and varint stays valid — only the name is unknown).
  const std::string manifest = dir_ + "/partition.islp";
  std::string blob;
  {
    std::ifstream in(manifest, std::ios::binary);
    ASSERT_TRUE(in.is_open());
    blob.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const std::size_t pos = blob.find("islabel");
  ASSERT_NE(pos, std::string::npos);
  blob.replace(pos, 7, "nosuchb");
  {
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }

  auto loaded = PartitionedIndex::Load(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().ToString().find("nosuchb"), std::string::npos)
      << loaded.status().ToString();
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan leg)
// ---------------------------------------------------------------------------

/// Many threads hammer one CHIndex through every query entry point while
/// comparing against precomputed expected answers. Under TSan this
/// exercises the scratch pool's lease/release protocol.
TEST(CHConcurrencyTest, ParallelQueriesAreExactAndRaceFree) {
  Graph g = MakeTestGraph(Family::kGrid, 140, /*weighted=*/true, 89);
  auto built = CHIndex::Build(g);
  ASSERT_TRUE(built.ok());
  CHIndex index = std::move(built).value();

  const auto pairs = SampleQueryPairs(g, 64, 97);
  std::vector<Distance> expected(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    expected[i] = DijkstraP2P(g, pairs[i].first, pairs[i].second);
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int r = 0; r < kRounds; ++r) {
        const std::size_t i =
            (static_cast<std::size_t>(w) * 31 + static_cast<std::size_t>(r)) %
            pairs.size();
        const auto [s, t] = pairs[i];
        if (r % 3 == 0) {
          std::vector<VertexId> path;
          Distance d = 0;
          if (!index.ShortestPath(s, t, &path, &d).ok() || d != expected[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          Distance d = 0;
          if (!index.Query(s, t, &d).ok() || d != expected[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

/// Same shape one level up: concurrent queries against a mixed-backend
/// partitioned index (CH and IS-LABEL parts leased simultaneously).
TEST(CHConcurrencyTest, MixedCatalogParallelQueries) {
  VertexId grid_n = 0;
  Graph g = MakeMixedGraph(&grid_n);
  PartitionOptions opts;
  opts.backend = BackendKind::kAuto;
  auto built = PartitionedIndex::Build(g, opts);
  ASSERT_TRUE(built.ok());
  PartitionedIndex index = std::move(built).value();

  const auto pairs = SampleQueryPairs(g, 48, 101);
  std::vector<Distance> expected(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    expected[i] = DijkstraP2P(g, pairs[i].first, pairs[i].second);
  }

  constexpr int kThreads = 6;
  constexpr int kRounds = 30;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int r = 0; r < kRounds; ++r) {
        const std::size_t i =
            (static_cast<std::size_t>(w) * 17 + static_cast<std::size_t>(r)) %
            pairs.size();
        Distance d = 0;
        if (!index.Query(pairs[i].first, pairs[i].second, &d).ok() ||
            d != expected[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace islabel
