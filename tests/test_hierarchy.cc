// Tests for hierarchy construction: Algorithm 2 (independent set),
// Algorithm 3 (distance-preserving augmentation), the σ / forced-k / full
// termination rules, and the structural invariants of Definition 1.

#include <gtest/gtest.h>

#include <tuple>

#include "baseline/dijkstra.h"
#include "core/augment.h"
#include "core/hierarchy.h"
#include "core/independent_set.h"
#include "core/level_graph.h"
#include "tests/test_common.h"
#include "util/random.h"

namespace islabel {
namespace {

using testing::Family;
using testing::MakeTestGraph;

// ---------- Independent set (Algorithm 2) ----------

class IsOrderTest : public ::testing::TestWithParam<
                        std::tuple<Family, VertexId, IsOrder>> {};

TEST_P(IsOrderTest, IndependentAndMaximal) {
  const auto [family, n, order] = GetParam();
  Graph g = MakeTestGraph(family, n, /*weighted=*/false, /*seed=*/4);
  LevelGraph lg = LevelGraph::FromGraph(g);
  Rng rng(7);
  std::vector<VertexId> is = ComputeIndependentSet(lg, order, &rng);

  BitVector in_set(g.NumVertices());
  for (VertexId v : is) in_set.Set(v);
  // Independence: no edge inside the set.
  for (VertexId v : is) {
    for (VertexId u : g.Neighbors(v)) {
      ASSERT_FALSE(in_set[u]) << "edge inside independent set";
    }
  }
  // Maximality: every vertex outside the set has a neighbor inside.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (in_set[v]) continue;
    bool dominated = false;
    for (VertexId u : g.Neighbors(v)) dominated |= in_set[u];
    ASSERT_TRUE(dominated) << "vertex " << v << " could be added";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, IsOrderTest,
    ::testing::Combine(
        ::testing::Values(Family::kErdosRenyi, Family::kBarabasiAlbert,
                          Family::kRMat, Family::kGrid, Family::kStar,
                          Family::kClique, Family::kDisconnected),
        ::testing::Values(60, 300),
        ::testing::Values(IsOrder::kMinDegree, IsOrder::kRandom,
                          IsOrder::kMaxDegree)),
    ([](const auto& info) {
      const auto [family, n, order] = info.param;
      std::string o = order == IsOrder::kMinDegree  ? "MinDeg"
                      : order == IsOrder::kRandom   ? "Random"
                                                    : "MaxDeg";
      return std::string(testing::FamilyName(family)) + "_" +
             std::to_string(n) + "_" + o;
    }));

TEST(IndependentSet, MinDegreeSelectsIsolatedAndLeavesFirst) {
  // Star: the leaves (degree 1) come before the hub (degree n-1), so the
  // greedy set is exactly the leaves.
  Graph g = Graph::FromEdgeList(GenerateStar(50));
  LevelGraph lg = LevelGraph::FromGraph(g);
  Rng rng(1);
  auto is = ComputeIndependentSet(lg, IsOrder::kMinDegree, &rng);
  EXPECT_EQ(is.size(), 49u);
  for (VertexId v : is) EXPECT_NE(v, 0u);
}

TEST(IndependentSet, IncludesIsolatedVertices) {
  EdgeList el(6);
  el.Add(0, 1);
  Graph g = Graph::FromEdgeList(el);  // 2,3,4,5 isolated
  LevelGraph lg = LevelGraph::FromGraph(g);
  Rng rng(1);
  auto is = ComputeIndependentSet(lg, IsOrder::kMinDegree, &rng);
  BitVector in_set(6);
  for (VertexId v : is) in_set.Set(v);
  for (VertexId v = 2; v < 6; ++v) EXPECT_TRUE(in_set[v]);
}

TEST(IndependentSet, DeterministicForFixedSeed) {
  Graph g = MakeTestGraph(Family::kRMat, 256, false, 11);
  LevelGraph lg1 = LevelGraph::FromGraph(g);
  LevelGraph lg2 = LevelGraph::FromGraph(g);
  Rng r1(5), r2(5);
  EXPECT_EQ(ComputeIndependentSet(lg1, IsOrder::kRandom, &r1),
            ComputeIndependentSet(lg2, IsOrder::kRandom, &r2));
}

// ---------- Augmentation (Algorithm 3, Lemma 2) ----------

class AugmentTest
    : public ::testing::TestWithParam<std::tuple<Family, bool, int>> {};

TEST_P(AugmentTest, PreservesAllPairDistances) {
  const auto [family, weighted, seed] = GetParam();
  Graph g = MakeTestGraph(family, 48, weighted, seed);
  const VertexId n = g.NumVertices();

  LevelGraph lg = LevelGraph::FromGraph(g);
  Rng rng(seed);
  std::vector<VertexId> is = ComputeIndependentSet(lg, IsOrder::kMinDegree,
                                                   &rng);
  std::vector<std::vector<HierEdge>> removed_adj(n);
  for (VertexId v : is) removed_adj[v] = std::move(lg.adj[v]);
  auto aug = AugmentInPlace(&lg, is, removed_adj);
  ASSERT_TRUE(aug.ok()) << aug.status().ToString();

  Graph g2 = lg.ToGraph(/*keep_vias=*/true);
  // Distance preservation (Lemma 2): every surviving pair keeps its exact
  // distance.
  BitVector removed(n);
  for (VertexId v : is) removed.Set(v);
  for (VertexId s = 0; s < n; ++s) {
    if (removed[s]) continue;
    SsspResult before = DijkstraSssp(g, s);
    SsspResult after = DijkstraSssp(g2, s);
    for (VertexId t = 0; t < n; ++t) {
      if (removed[t]) continue;
      ASSERT_EQ(after.dist[t], before.dist[t])
          << "dist(" << s << "," << t << ") changed";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, AugmentTest,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi, Family::kRMat,
                                         Family::kGrid, Family::kStar,
                                         Family::kTree, Family::kCycle,
                                         Family::kDisconnected),
                       ::testing::Bool(), ::testing::Values(1, 2)),
    ([](const auto& info) {
      const auto [family, weighted, seed] = info.param;
      return std::string(testing::FamilyName(family)) +
             (weighted ? "_Weighted_" : "_Unit_") + std::to_string(seed);
    }));

TEST(Augment, ViaRecordsIntermediateVertex) {
  // Path 0-1-2: removing 1 creates (0,2) with via=1, weight sum.
  EdgeList el(3);
  el.Add(0, 1, 2);
  el.Add(1, 2, 3);
  Graph g = Graph::FromEdgeList(el);
  LevelGraph lg = LevelGraph::FromGraph(g);
  std::vector<std::vector<HierEdge>> removed_adj(3);
  removed_adj[1] = std::move(lg.adj[1]);
  auto aug = AugmentInPlace(&lg, {1}, removed_adj);
  ASSERT_TRUE(aug.ok());
  EXPECT_EQ(aug->edges_inserted, 1u);
  ASSERT_EQ(lg.adj[0].size(), 1u);
  EXPECT_EQ(lg.adj[0][0].to, 2u);
  EXPECT_EQ(lg.adj[0][0].w, 5u);
  EXPECT_EQ(lg.adj[0][0].via, 1u);
}

TEST(Augment, ExistingEdgeKeepsSmallerWeight) {
  // Triangle 0-1-2 with direct (0,2) cheaper than the 2-path through 1.
  EdgeList el(3);
  el.Add(0, 1, 4);
  el.Add(1, 2, 4);
  el.Add(0, 2, 1);
  Graph g = Graph::FromEdgeList(el);
  LevelGraph lg = LevelGraph::FromGraph(g);
  std::vector<std::vector<HierEdge>> removed_adj(3);
  removed_adj[1] = std::move(lg.adj[1]);
  auto aug = AugmentInPlace(&lg, {1}, removed_adj);
  ASSERT_TRUE(aug.ok());
  EXPECT_EQ(lg.adj[0][0].w, 1u);
  EXPECT_EQ(lg.adj[0][0].via, kInvalidVertex);  // original edge won
}

TEST(Augment, ExistingEdgeLoweredBy2Path) {
  EdgeList el(3);
  el.Add(0, 1, 1);
  el.Add(1, 2, 1);
  el.Add(0, 2, 10);
  Graph g = Graph::FromEdgeList(el);
  LevelGraph lg = LevelGraph::FromGraph(g);
  std::vector<std::vector<HierEdge>> removed_adj(3);
  removed_adj[1] = std::move(lg.adj[1]);
  auto aug = AugmentInPlace(&lg, {1}, removed_adj);
  ASSERT_TRUE(aug.ok());
  EXPECT_EQ(aug->weights_lowered, 1u);
  EXPECT_EQ(lg.adj[0][0].w, 2u);
  EXPECT_EQ(lg.adj[0][0].via, 1u);
}

TEST(Augment, RejectsNonIndependentSet) {
  EdgeList el(2);
  el.Add(0, 1, 1);
  Graph g = Graph::FromEdgeList(el);
  LevelGraph lg = LevelGraph::FromGraph(g);
  std::vector<std::vector<HierEdge>> removed_adj(2);
  removed_adj[0] = lg.adj[0];
  removed_adj[1] = lg.adj[1];
  LevelGraph lg2 = lg;
  auto aug = AugmentInPlace(&lg2, {0, 1}, removed_adj);
  EXPECT_FALSE(aug.ok());
}

TEST(Augment, WeightOverflowDetected) {
  EdgeList el(3);
  const Weight big = std::numeric_limits<Weight>::max() - 1;
  el.Add(0, 1, big);
  el.Add(1, 2, big);
  Graph g = Graph::FromEdgeList(el);
  LevelGraph lg = LevelGraph::FromGraph(g);
  std::vector<std::vector<HierEdge>> removed_adj(3);
  removed_adj[1] = std::move(lg.adj[1]);
  auto aug = AugmentInPlace(&lg, {1}, removed_adj);
  ASSERT_FALSE(aug.ok());
  EXPECT_TRUE(aug.status().IsOutOfRange());
}

// ---------- Full hierarchy construction ----------

class HierarchyTest
    : public ::testing::TestWithParam<std::tuple<Family, bool>> {};

TEST_P(HierarchyTest, StructuralInvariants) {
  const auto [family, weighted] = GetParam();
  Graph g = MakeTestGraph(family, 200, weighted, 9);
  IndexOptions opts;
  auto hr = BuildHierarchy(g, opts);
  ASSERT_TRUE(hr.ok()) << hr.status().ToString();
  const VertexHierarchy& h = *hr;

  ASSERT_GE(h.k, 1u);
  ASSERT_EQ(h.level.size(), g.NumVertices());
  ASSERT_EQ(h.levels.size(), h.k);  // index 0 unused + levels 1..k-1

  // Every vertex has a level in [1, k]; level partition matches h.levels.
  std::vector<std::uint64_t> count_per_level(h.k + 1, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_GE(h.level[v], 1u);
    ASSERT_LE(h.level[v], h.k);
    ++count_per_level[h.level[v]];
  }
  for (std::uint32_t i = 1; i < h.k; ++i) {
    ASSERT_EQ(h.levels[i].size(), count_per_level[i]);
    for (VertexId v : h.levels[i]) ASSERT_EQ(h.level[v], i);
  }

  // Ancestor-DAG edges strictly increase in level (removed_adj targets all
  // survive past their source's level).
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const HierEdge& e : h.removed_adj[v]) {
      ASSERT_GT(h.level[e.to], h.level[v])
          << "DAG edge does not increase level";
    }
    if (h.level[v] == h.k) {
      ASSERT_TRUE(h.removed_adj[v].empty());
    }
  }

  // G_k spans exactly the level-k vertices.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (h.level[v] < h.k) {
      ASSERT_EQ(h.g_k.Degree(v), 0u) << "removed vertex still in G_k";
    }
    for (VertexId u : h.g_k.Neighbors(v)) {
      ASSERT_EQ(h.level[u], h.k);
    }
  }

  // G_k preserves distances of G among core vertices (Lemma 1).
  std::vector<VertexId> core;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (h.level[v] == h.k) core.push_back(v);
  }
  const std::size_t check = std::min<std::size_t>(core.size(), 5);
  for (std::size_t i = 0; i < check; ++i) {
    SsspResult in_g = DijkstraSssp(g, core[i]);
    SsspResult in_gk = DijkstraSssp(h.g_k, core[i]);
    for (VertexId t : core) {
      ASSERT_EQ(in_gk.dist[t], in_g.dist[t])
          << "G_k distance mismatch from " << core[i] << " to " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, HierarchyTest,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi,
                                         Family::kBarabasiAlbert,
                                         Family::kRMat, Family::kGrid,
                                         Family::kWattsStrogatz, Family::kPath,
                                         Family::kStar, Family::kTree,
                                         Family::kClique,
                                         Family::kDisconnected),
                       ::testing::Bool()),
    ([](const auto& info) {
      const auto [family, weighted] = info.param;
      return std::string(testing::FamilyName(family)) +
             (weighted ? "_Weighted" : "_Unit");
    }));

TEST(Hierarchy, FullHierarchyEmptiesTheGraph) {
  Graph g = MakeTestGraph(Family::kErdosRenyi, 150, false, 3);
  IndexOptions opts;
  opts.full_hierarchy = true;
  auto hr = BuildHierarchy(g, opts);
  ASSERT_TRUE(hr.ok());
  EXPECT_EQ(hr->g_k.NumEdges(), 0u);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_LT(hr->level[v], hr->k) << "no vertex should remain at level k";
  }
}

TEST(Hierarchy, ForcedKStopsExactlyThere) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 400, false, 6);
  for (std::uint32_t want_k : {2u, 3u, 5u}) {
    IndexOptions opts;
    opts.forced_k = want_k;
    auto hr = BuildHierarchy(g, opts);
    ASSERT_TRUE(hr.ok());
    EXPECT_EQ(hr->k, want_k);
  }
}

TEST(Hierarchy, SigmaMonotonicity) {
  // A lower sigma threshold makes termination easier, so k is no larger.
  Graph g = MakeTestGraph(Family::kRMat, 1024, false, 12);
  IndexOptions strict;  // 0.95
  IndexOptions loose;
  loose.sigma = 0.80;
  auto h1 = BuildHierarchy(g, strict);
  auto h2 = BuildHierarchy(g, loose);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_LE(h2->k, h1->k);
}

TEST(Hierarchy, MaxLevelsBound) {
  Graph g = MakeTestGraph(Family::kGrid, 400, false, 2);
  IndexOptions opts;
  opts.full_hierarchy = true;
  opts.max_levels = 3;
  auto hr = BuildHierarchy(g, opts);
  ASSERT_TRUE(hr.ok());
  EXPECT_EQ(hr->k, 3u);
}

TEST(Hierarchy, LevelStatsShrink) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 500, false, 8);
  auto hr = BuildHierarchy(g, IndexOptions{});
  ASSERT_TRUE(hr.ok());
  ASSERT_EQ(hr->stats.size(), hr->k);
  for (std::size_t i = 1; i < hr->stats.size(); ++i) {
    EXPECT_LT(hr->stats[i].num_vertices, hr->stats[i - 1].num_vertices);
  }
  EXPECT_EQ(hr->stats[0].num_vertices, g.NumVertices());
}

TEST(Hierarchy, InvalidOptionsRejected) {
  Graph g = MakeTestGraph(Family::kPath, 10, false, 1);
  IndexOptions bad;
  bad.sigma = 0.0;
  EXPECT_FALSE(BuildHierarchy(g, bad).ok());
  IndexOptions bad2;
  bad2.forced_k = 1;
  EXPECT_FALSE(BuildHierarchy(g, bad2).ok());
  IndexOptions bad3;
  bad3.forced_k = 3;
  bad3.full_hierarchy = true;
  EXPECT_FALSE(BuildHierarchy(g, bad3).ok());
}

TEST(Hierarchy, EmptyAndTinyGraphs) {
  auto h0 = BuildHierarchy(Graph::FromEdgeList(EdgeList(0)), IndexOptions{});
  ASSERT_TRUE(h0.ok());
  EXPECT_EQ(h0->k, 1u);

  auto h1 = BuildHierarchy(Graph::FromEdgeList(EdgeList(1)), IndexOptions{});
  ASSERT_TRUE(h1.ok());

  EdgeList two(2);
  two.Add(0, 1, 3);
  auto h2 = BuildHierarchy(Graph::FromEdgeList(two), IndexOptions{});
  ASSERT_TRUE(h2.ok());
}

}  // namespace
}  // namespace islabel
