// Unit tests for the external-memory substrate: block file, external
// sorter, label store, graph I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/label_entry.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "storage/block_file.h"
#include "storage/external_sorter.h"
#include "storage/label_store.h"
#include "util/random.h"

namespace islabel {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "islabel_storage_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) { return dir_ + "/" + name; }
  std::string dir_;
};

// ---------- BlockFile ----------

TEST_F(StorageTest, BlockFileAppendAndRead) {
  BlockFile f;
  ASSERT_TRUE(f.Open(Path("bf"), true).ok());
  std::uint64_t off1 = 0, off2 = 0;
  ASSERT_TRUE(f.Append("hello", 5, &off1).ok());
  ASSERT_TRUE(f.Append("world", 5, &off2).ok());
  EXPECT_EQ(off1, 0u);
  EXPECT_EQ(off2, 5u);
  EXPECT_EQ(f.FileSize(), 10u);
  char buf[5];
  ASSERT_TRUE(f.ReadAt(5, buf, 5).ok());
  EXPECT_EQ(std::string(buf, 5), "world");
  ASSERT_TRUE(f.ReadAt(0, buf, 5).ok());
  EXPECT_EQ(std::string(buf, 5), "hello");
}

TEST_F(StorageTest, BlockFileReadPastEofFails) {
  BlockFile f;
  ASSERT_TRUE(f.Open(Path("bf"), true).ok());
  ASSERT_TRUE(f.Append("abc", 3, nullptr).ok());
  char buf[8];
  EXPECT_TRUE(f.ReadAt(0, buf, 8).IsOutOfRange());
}

TEST_F(StorageTest, BlockFileCountsSeeksAndSequentialReads) {
  BlockFile f;
  ASSERT_TRUE(f.Open(Path("bf"), true, /*block_size=*/16).ok());
  std::string data(64, 'x');
  ASSERT_TRUE(f.Append(data.data(), data.size(), nullptr).ok());
  f.ResetStats();
  char buf[16];
  ASSERT_TRUE(f.ReadAt(0, buf, 16).ok());   // seek
  ASSERT_TRUE(f.ReadAt(16, buf, 16).ok());  // sequential
  ASSERT_TRUE(f.ReadAt(48, buf, 16).ok());  // seek
  EXPECT_EQ(f.stats().seeks, 2u);
  EXPECT_EQ(f.stats().bytes_read, 48u);
  EXPECT_EQ(f.stats().block_reads, 3u);
}

TEST_F(StorageTest, BlockFileWriteAtPatchesInPlace) {
  BlockFile f;
  ASSERT_TRUE(f.Open(Path("bf"), true).ok());
  ASSERT_TRUE(f.Append("aaaa", 4, nullptr).ok());
  ASSERT_TRUE(f.WriteAt(1, "XY", 2).ok());
  char buf[4];
  ASSERT_TRUE(f.ReadAt(0, buf, 4).ok());
  EXPECT_EQ(std::string(buf, 4), "aXYa");
}

TEST_F(StorageTest, BlockFileOpenMissingForReadCreates) {
  BlockFile f;
  ASSERT_TRUE(f.Open(Path("nonexistent"), false).ok());
  EXPECT_EQ(f.FileSize(), 0u);
}

// ---------- ExternalSorter ----------

TEST_F(StorageTest, SorterPureInMemory) {
  ExternalSorter<std::uint64_t> sorter("", 1 << 20);
  Rng rng(1);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(rng.Uniform(1 << 30));
    ASSERT_TRUE(sorter.Add(values.back()).ok());
  }
  ASSERT_TRUE(sorter.Finish().ok());
  std::sort(values.begin(), values.end());
  std::uint64_t v;
  for (std::uint64_t expected : values) {
    ASSERT_TRUE(sorter.Next(&v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_FALSE(sorter.Next(&v));
  EXPECT_EQ(sorter.num_runs(), 0u);
}

TEST_F(StorageTest, SorterSpillsAndMerges) {
  // Budget of 256 bytes => 32 records per run => many runs for 5000 values.
  ExternalSorter<std::uint64_t> sorter(dir_, 256);
  Rng rng(2);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(rng.Uniform(1 << 30));
    ASSERT_TRUE(sorter.Add(values.back()).ok());
  }
  ASSERT_TRUE(sorter.Finish().ok());
  EXPECT_GT(sorter.num_runs(), 10u);
  std::sort(values.begin(), values.end());
  std::uint64_t v;
  for (std::uint64_t expected : values) {
    ASSERT_TRUE(sorter.Next(&v));
    ASSERT_EQ(v, expected);
  }
  EXPECT_FALSE(sorter.Next(&v));
  EXPECT_GT(sorter.stats().bytes_written, 0u);
  EXPECT_GT(sorter.stats().bytes_read, 0u);
}

TEST_F(StorageTest, SorterCustomComparatorAndStruct) {
  struct Rec {
    std::uint32_t key;
    std::uint32_t payload;
  };
  struct ByKeyDesc {
    bool operator()(const Rec& a, const Rec& b) const {
      return a.key > b.key;
    }
  };
  ExternalSorter<Rec, ByKeyDesc> sorter(dir_, 64, ByKeyDesc{});
  for (std::uint32_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(sorter.Add({i, i * 2}).ok());
  }
  ASSERT_TRUE(sorter.Finish().ok());
  Rec r;
  std::uint32_t expected = 499;
  while (sorter.Next(&r)) {
    EXPECT_EQ(r.key, expected);
    EXPECT_EQ(r.payload, expected * 2);
    --expected;
  }
  EXPECT_EQ(expected, UINT32_MAX);  // consumed all 500
}

TEST_F(StorageTest, SorterDuplicatesSurvive) {
  ExternalSorter<std::uint32_t> sorter(dir_, 64);
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(sorter.Add(7).ok());
  ASSERT_TRUE(sorter.Finish().ok());
  int count = 0;
  std::uint32_t v;
  while (sorter.Next(&v)) {
    EXPECT_EQ(v, 7u);
    ++count;
  }
  EXPECT_EQ(count, 300);
}

TEST_F(StorageTest, SorterEmptyInput) {
  ExternalSorter<std::uint64_t> sorter(dir_, 1024);
  ASSERT_TRUE(sorter.Finish().ok());
  std::uint64_t v;
  EXPECT_FALSE(sorter.Next(&v));
}

// ---------- LabelStore ----------

std::vector<std::vector<LabelEntry>> MakeLabels(VertexId n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<LabelEntry>> labels(n);
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t len = rng.Uniform(8);  // includes empty labels
    VertexId node = 0;
    for (std::size_t i = 0; i < len; ++i) {
      node += 1 + static_cast<VertexId>(rng.Uniform(50));
      labels[v].emplace_back(node, rng.Uniform(1000),
                             rng.Bernoulli(0.5)
                                 ? kInvalidVertex
                                 : static_cast<VertexId>(rng.Uniform(n)));
    }
  }
  return labels;
}

TEST_F(StorageTest, LabelStoreRoundTripWithVias) {
  const VertexId n = 200;
  auto labels = MakeLabels(n, 77);
  LabelStoreWriter writer;
  ASSERT_TRUE(writer.Open(Path("labels"), n, /*store_vias=*/true).ok());
  for (const auto& l : labels) ASSERT_TRUE(writer.Add(l).ok());
  ASSERT_TRUE(writer.Finish().ok());

  LabelStore store;
  ASSERT_TRUE(store.Open(Path("labels")).ok());
  EXPECT_EQ(store.num_vertices(), n);
  EXPECT_TRUE(store.store_vias());
  std::vector<LabelEntry> got;
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_TRUE(store.GetLabel(v, &got).ok());
    ASSERT_EQ(got.size(), labels[v].size()) << "vertex " << v;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], labels[v][i]);
    }
  }
}

TEST_F(StorageTest, LabelStoreRoundTripWithoutVias) {
  const VertexId n = 50;
  auto labels = MakeLabels(n, 13);
  LabelStoreWriter writer;
  ASSERT_TRUE(writer.Open(Path("labels"), n, /*store_vias=*/false).ok());
  for (const auto& l : labels) ASSERT_TRUE(writer.Add(l).ok());
  ASSERT_TRUE(writer.Finish().ok());

  LabelStore store;
  ASSERT_TRUE(store.Open(Path("labels")).ok());
  std::vector<LabelEntry> got;
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_TRUE(store.GetLabel(v, &got).ok());
    ASSERT_EQ(got.size(), labels[v].size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].node, labels[v][i].node);
      EXPECT_EQ(got[i].dist, labels[v][i].dist);
      EXPECT_EQ(got[i].via, kInvalidVertex);  // vias stripped
    }
  }
}

TEST_F(StorageTest, LabelStoreLoadAllMatchesGetLabel) {
  const VertexId n = 120;
  auto labels = MakeLabels(n, 99);
  LabelStoreWriter writer;
  ASSERT_TRUE(writer.Open(Path("labels"), n, true).ok());
  for (const auto& l : labels) ASSERT_TRUE(writer.Add(l).ok());
  ASSERT_TRUE(writer.Finish().ok());

  LabelStore store;
  ASSERT_TRUE(store.Open(Path("labels")).ok());
  std::vector<std::vector<LabelEntry>> all;
  ASSERT_TRUE(store.LoadAll(&all).ok());
  ASSERT_EQ(all.size(), n);
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(all[v].size(), labels[v].size());
    for (std::size_t i = 0; i < all[v].size(); ++i) {
      EXPECT_EQ(all[v][i], labels[v][i]);
    }
  }
}

TEST_F(StorageTest, LabelStoreOneReadPerLabel) {
  const VertexId n = 64;
  auto labels = MakeLabels(n, 3);
  LabelStoreWriter writer;
  ASSERT_TRUE(writer.Open(Path("labels"), n, true).ok());
  for (const auto& l : labels) ASSERT_TRUE(writer.Add(l).ok());
  ASSERT_TRUE(writer.Finish().ok());

  LabelStore store;
  ASSERT_TRUE(store.Open(Path("labels")).ok());
  std::vector<LabelEntry> got;
  ASSERT_TRUE(store.GetLabel(10, &got).ok());
  ASSERT_TRUE(store.GetLabel(53, &got).ok());
  // Two positioned reads for non-empty labels; empty labels cost zero.
  EXPECT_LE(store.stats().seeks, 2u);
  EXPECT_LE(store.stats().block_reads, 2u);
}

TEST_F(StorageTest, LabelStoreRejectsUnsortedLabel) {
  LabelStoreWriter writer;
  ASSERT_TRUE(writer.Open(Path("labels"), 1, false).ok());
  std::vector<LabelEntry> bad = {LabelEntry(5, 1), LabelEntry(3, 1)};
  EXPECT_TRUE(writer.Add(bad).IsInvalidArgument());
}

TEST_F(StorageTest, LabelStoreFinishRequiresAllLabels) {
  LabelStoreWriter writer;
  ASSERT_TRUE(writer.Open(Path("labels"), 3, false).ok());
  const std::vector<LabelEntry> one = {LabelEntry(1, 1)};
  ASSERT_TRUE(writer.Add(one).ok());
  EXPECT_TRUE(writer.Finish().IsFailedPrecondition());
}

TEST_F(StorageTest, LabelStoreDetectsCorruption) {
  LabelStoreWriter writer;
  ASSERT_TRUE(writer.Open(Path("labels"), 2, false).ok());
  const std::vector<LabelEntry> one = {LabelEntry(1, 1)};
  ASSERT_TRUE(writer.Add(one).ok());
  ASSERT_TRUE(writer.Add(LabelView()).ok());
  ASSERT_TRUE(writer.Finish().ok());
  // Truncate the file: footer magic lost.
  std::filesystem::resize_file(Path("labels"),
                               std::filesystem::file_size(Path("labels")) - 3);
  LabelStore store;
  EXPECT_FALSE(store.Open(Path("labels")).ok());
}

TEST_F(StorageTest, LabelStoreOutOfRangeVertex) {
  LabelStoreWriter writer;
  ASSERT_TRUE(writer.Open(Path("labels"), 1, false).ok());
  ASSERT_TRUE(writer.Add({}).ok());
  ASSERT_TRUE(writer.Finish().ok());
  LabelStore store;
  ASSERT_TRUE(store.Open(Path("labels")).ok());
  std::vector<LabelEntry> got;
  EXPECT_TRUE(store.GetLabel(5, &got).IsOutOfRange());
}

// ---------- Graph I/O ----------

TEST_F(StorageTest, GraphTextRoundTrip) {
  Rng rng(8);
  EdgeList el = GenerateErdosRenyi(80, 200, &rng);
  AssignUniformWeights(&el, 1, 5, &rng);
  Graph g = Graph::FromEdgeList(el);
  ASSERT_TRUE(WriteEdgeListText(g, Path("g.txt")).ok());
  auto back = ReadEdgeListText(Path("g.txt"));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  Graph g2 = Graph::FromEdgeList(std::move(back).value());
  ASSERT_EQ(g2.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto a = g.Neighbors(v), b = g2.Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]);
      EXPECT_EQ(g.NeighborWeights(v)[i], g2.NeighborWeights(v)[i]);
    }
  }
}

TEST_F(StorageTest, GraphTextHandlesCommentsAndImplicitWeight) {
  {
    std::FILE* f = std::fopen(Path("g.txt").c_str(), "w");
    std::fputs("# comment\n% another\n0 1\n1 2 5\n\n", f);
    std::fclose(f);
  }
  auto el = ReadEdgeListText(Path("g.txt"));
  ASSERT_TRUE(el.ok());
  Graph g = Graph::FromEdgeList(std::move(el).value());
  EXPECT_EQ(g.EdgeWeight(0, 1), 1u);
  EXPECT_EQ(g.EdgeWeight(1, 2), 5u);
}

TEST_F(StorageTest, GraphTextRejectsMalformed) {
  {
    std::FILE* f = std::fopen(Path("g.txt").c_str(), "w");
    std::fputs("0 zebra\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadEdgeListText(Path("g.txt")).ok());
}

TEST_F(StorageTest, GraphTextErrorsNameTheLine) {
  {
    std::FILE* f = std::fopen(Path("g.txt").c_str(), "w");
    std::fputs("# header\n0 1 4\nbroken line\n", f);
    std::fclose(f);
  }
  auto el = ReadEdgeListText(Path("g.txt"));
  ASSERT_FALSE(el.ok());
  EXPECT_NE(el.status().message().find("line 3"), std::string::npos)
      << el.status().ToString();
}

TEST_F(StorageTest, GraphTextAcceptsCrLf) {
  {
    std::FILE* f = std::fopen(Path("g.txt").c_str(), "wb");
    std::fputs("# comment\r\n\r\n0 1 4\r\n1 2\r\n", f);
    std::fclose(f);
  }
  auto el = ReadEdgeListText(Path("g.txt"));
  ASSERT_TRUE(el.ok()) << el.status().ToString();
  Graph g = Graph::FromEdgeList(std::move(el).value());
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.EdgeWeight(0, 1), 4u);
  EXPECT_EQ(g.EdgeWeight(1, 2), 1u);  // implicit weight survives the \r
}

// ---------- DIMACS (.gr / .co) ----------

TEST_F(StorageTest, DimacsGraphRoundTrip) {
  Rng rng(13);
  EdgeList el = GenerateErdosRenyi(60, 150, &rng);
  AssignUniformWeights(&el, 1, 9, &rng);
  Graph g = Graph::FromEdgeList(el);
  ASSERT_TRUE(WriteDimacsGraph(g, Path("g.gr")).ok());
  auto back = ReadDimacsGraph(Path("g.gr"));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // The writer emits both arc orientations; normalization merges them
  // back into exactly the original undirected edge set.
  Graph g2 = Graph::FromEdgeList(std::move(back).value());
  ASSERT_EQ(g2.NumVertices(), g.NumVertices());
  ASSERT_EQ(g2.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto a = g.Neighbors(v), b = g2.Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]);
      EXPECT_EQ(g.NeighborWeights(v)[i], g2.NeighborWeights(v)[i]);
    }
  }
}

TEST_F(StorageTest, DimacsGraphParsesHandWrittenFile) {
  {
    std::FILE* f = std::fopen(Path("g.gr").c_str(), "w");
    const std::string long_comment = "c " + std::string(500, 'x') + "\n";
    std::fputs(long_comment.c_str(), f);  // longer than the parse buffer
    std::fputs(
        "c DIMACS shortest-path example\n"
        "c ids are 1-based\n"
        "p sp 4 4\n"
        "a 1 2 7\n"
        "a 2 1 7\n"
        "a 3 4 2\n"
        "\n"
        "a 4 3 2\n",
        f);
    std::fclose(f);
  }
  auto el = ReadDimacsGraph(Path("g.gr"));
  ASSERT_TRUE(el.ok()) << el.status().ToString();
  Graph g = Graph::FromEdgeList(std::move(el).value());
  EXPECT_EQ(g.NumVertices(), 4u);  // header pins N even with gaps
  EXPECT_EQ(g.NumEdges(), 2u);     // reverse arcs merged
  EXPECT_EQ(g.EdgeWeight(0, 1), 7u);
  EXPECT_EQ(g.EdgeWeight(2, 3), 2u);
}

TEST_F(StorageTest, DimacsGraphRejectsMalformed) {
  struct Case {
    const char* content;
    const char* needle;  // expected in the error message
  };
  const Case cases[] = {
      {"a 1 2 3\n", "before 'p sp' header"},
      {"p sp x y\n", "line 1"},
      {"p sp 4 1\na 1 5 2\n", "out of [1, N]"},
      {"p sp 4 1\na 0 2 2\n", "out of [1, N]"},
      {"p sp 4 1\na 1 2 0\n", "weight out of range"},
      {"p sp 4 2\na 1 2 3\n", "promises 2 arcs"},
      {"p sp 4 1\np sp 4 1\n", "duplicate 'p' header"},
      {"q nonsense\n", "unrecognized DIMACS line 1"},
  };
  for (const Case& c : cases) {
    std::FILE* f = std::fopen(Path("g.gr").c_str(), "w");
    std::fputs(c.content, f);
    std::fclose(f);
    auto el = ReadDimacsGraph(Path("g.gr"));
    ASSERT_FALSE(el.ok()) << c.content;
    EXPECT_NE(el.status().message().find(c.needle), std::string::npos)
        << c.content << " -> " << el.status().ToString();
  }
}

TEST_F(StorageTest, DimacsCoordinatesRoundTrip) {
  DimacsCoordinates coords;
  coords.x = {10, -20, 30};
  coords.y = {-1, 2, 2147483648LL};  // beyond 32 bits
  ASSERT_TRUE(WriteDimacsCoordinates(coords, Path("g.co")).ok());
  auto back = ReadDimacsCoordinates(Path("g.co"));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->x, coords.x);
  EXPECT_EQ(back->y, coords.y);
  // Malformed: id outside [1, N].
  {
    std::FILE* f = std::fopen(Path("g.co").c_str(), "w");
    std::fputs("p aux sp co 2\nv 3 1 1\n", f);
    std::fclose(f);
  }
  auto bad = ReadDimacsCoordinates(Path("g.co"));
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST_F(StorageTest, GraphBinaryRoundTripWithVias) {
  EdgeList el(6);
  el.Add(0, 1, 3, 5);
  el.Add(1, 2, 1);
  el.Add(2, 4, 7, 3);
  Graph g = Graph::FromEdgeList(el, /*keep_vias=*/true);
  ASSERT_TRUE(WriteGraphBinary(g, Path("g.bin")).ok());
  auto back = ReadGraphBinary(Path("g.bin"));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const Graph& g2 = *back;
  ASSERT_TRUE(g2.has_vias());
  ASSERT_EQ(g2.NumEdges(), 3u);
  EXPECT_EQ(g2.NeighborVias(0)[0], 5u);
  EXPECT_EQ(g2.EdgeWeight(2, 4), 7u);
}

TEST_F(StorageTest, GraphBinaryDetectsBadMagic) {
  {
    std::FILE* f = std::fopen(Path("g.bin").c_str(), "wb");
    std::fputs("garbage file content", f);
    std::fclose(f);
  }
  auto back = ReadGraphBinary(Path("g.bin"));
  EXPECT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsCorruption());
}

TEST_F(StorageTest, GraphBinaryLargeRoundTrip) {
  Rng rng(21);
  EdgeList el = GenerateBarabasiAlbert(3000, 4, &rng);
  AssignUniformWeights(&el, 1, 100, &rng);
  Graph g = Graph::FromEdgeList(el);
  ASSERT_TRUE(WriteGraphBinary(g, Path("g.bin")).ok());
  auto back = ReadGraphBinary(Path("g.bin"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumVertices(), g.NumVertices());
  EXPECT_EQ(back->NumEdges(), g.NumEdges());
  EXPECT_EQ(back->MemoryBytes(), g.MemoryBytes());
}

}  // namespace
}  // namespace islabel
