// End-to-end tests for the islabel CLI: drives the real binary (path
// injected by CMake as ISLABEL_TOOL_PATH) through gen → build → query /
// batch / serve pipelines and asserts on the exact protocol responses,
// validated against the library loaded in-process.

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "catalog/partitioned_index.h"
#include "core/index.h"
#include "graph/graph_io.h"
#include "tests/test_common.h"

namespace islabel {
namespace {

using testing::Family;
using testing::MakeTestGraph;

/// Runs `command` under sh, captures stdout (stderr discarded), returns
/// the exit code.
int RunCommand(const std::string& command, std::string* stdout_text) {
  stdout_text->clear();
  std::FILE* pipe = ::popen((command + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    stdout_text->append(buf, n);
  }
  const int rc = ::pclose(pipe);
  return WEXITSTATUS(rc);
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t nl = text.find('\n', begin);
    if (nl == std::string::npos) nl = text.size();
    lines.push_back(text.substr(begin, nl - begin));
    begin = nl + 1;
  }
  return lines;
}

class ToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tool_ = ISLABEL_TOOL_PATH;
    ASSERT_TRUE(std::filesystem::exists(tool_))
        << "islabel binary not built at " << tool_;
    dir_ = (std::filesystem::temp_directory_path() /
            ("islabel_tool_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
    graph_path_ = dir_ + "/g.txt";
    index_dir_ = dir_ + "/idx";

    // A deterministic weighted graph written through the library, then
    // indexed through the CLI.
    graph_ = MakeTestGraph(Family::kErdosRenyi, 200, /*weighted=*/true, 9);
    ASSERT_TRUE(WriteEdgeListText(graph_, graph_path_).ok());
    std::string out;
    ASSERT_EQ(RunCommand(tool_ + " build --graph " + graph_path_ +
                             " --index " + index_dir_,
                         &out),
              0)
        << out;
    ASSERT_NE(out.find("saved to"), std::string::npos) << out;

    auto loaded = ISLabelIndex::Load(index_dir_);
    ASSERT_TRUE(loaded.ok());
    index_ = std::move(loaded).value();
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  Distance Dist(VertexId s, VertexId t) {
    Distance d = 0;
    EXPECT_TRUE(index_.Query(s, t, &d).ok());
    return d;
  }
  std::string DistStr(VertexId s, VertexId t) {
    const Distance d = Dist(s, t);
    return d == kInfDistance ? "unreachable" : std::to_string(d);
  }

  std::string tool_;
  std::string dir_;
  std::string graph_path_;
  std::string index_dir_;
  Graph graph_;
  ISLabelIndex index_;
};

TEST_F(ToolTest, QueryCommandAnswersPairs) {
  std::string out;
  ASSERT_EQ(
      RunCommand(tool_ + " query --index " + index_dir_ + " 1 2 3 4", &out),
      0);
  EXPECT_NE(out.find("dist(1, 2) = " + DistStr(1, 2)), std::string::npos)
      << out;
  EXPECT_NE(out.find("dist(3, 4) = " + DistStr(3, 4)), std::string::npos)
      << out;
}

TEST_F(ToolTest, ServeAnswersProtocolOverPipes) {
  std::string out;
  const std::string script =
      "printf '1 2\\none 1 2 3\\npath 1 5\\nstats\\nquit\\n'";
  ASSERT_EQ(RunCommand(script + " | " + tool_ + " serve --index " +
                           index_dir_ + " --cache-mb 8",
                       &out),
            0);
  const std::vector<std::string> lines = SplitLines(out);
  ASSERT_EQ(lines.size(), 4u) << out;
  EXPECT_EQ(lines[0], DistStr(1, 2));
  EXPECT_EQ(lines[1],
            DistStr(1, 2) + " " + DistStr(1, 3));
  // path response: "D: v0 ... vk" (or unreachable).
  if (Dist(1, 5) == kInfDistance) {
    EXPECT_EQ(lines[2], "unreachable");
  } else {
    EXPECT_EQ(lines[2].substr(0, lines[2].find(':')), DistStr(1, 5));
  }
  EXPECT_EQ(lines[3].rfind("stats:", 0), 0u) << lines[3];
  EXPECT_NE(lines[3].find("requests=4"), std::string::npos) << lines[3];
}

TEST_F(ToolTest, ServeRejectsMalformedRequests) {
  // The PR-4 satellite fix: trailing garbage and non-numeric ids answer
  // with a usage error instead of being silently truncated.
  std::string out;
  const std::string script =
      "printf '1 2 junk\\n1 x\\nnonsense req\\n7 8\\nquit\\n'";
  ASSERT_EQ(RunCommand(script + " | " + tool_ + " serve --index " +
                           index_dir_,
                       &out),
            0);
  const std::vector<std::string> lines = SplitLines(out);
  ASSERT_EQ(lines.size(), 4u) << out;
  EXPECT_EQ(lines[0], "error: usage: S T");
  EXPECT_EQ(lines[1], "error: usage: S T");
  EXPECT_EQ(lines[2], "error: unrecognized request: nonsense req");
  EXPECT_EQ(lines[3], DistStr(7, 8));  // the loop keeps serving
}

TEST_F(ToolTest, ServeDiskModeMatchesInMemory) {
  std::string out;
  const std::string script = "printf '1 2\\n3 4\\nquit\\n'";
  ASSERT_EQ(RunCommand(script + " | " + tool_ + " serve --index " +
                           index_dir_ + " --disk",
                       &out),
            0);
  const std::vector<std::string> lines = SplitLines(out);
  ASSERT_EQ(lines.size(), 2u) << out;
  EXPECT_EQ(lines[0], DistStr(1, 2));
  EXPECT_EQ(lines[1], DistStr(3, 4));
}

TEST_F(ToolTest, BatchAnswersPairsFile) {
  const std::string pairs_path = dir_ + "/pairs.txt";
  std::FILE* f = std::fopen(pairs_path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "1 2\n3 4\n# comment\n5 6\n");
  std::fclose(f);
  std::string out;
  ASSERT_EQ(RunCommand(tool_ + " batch --index " + index_dir_ + " --in " +
                           pairs_path,
                       &out),
            0);
  const std::vector<std::string> lines = SplitLines(out);
  ASSERT_EQ(lines.size(), 3u) << out;
  EXPECT_EQ(lines[0], "1 2 " + DistStr(1, 2));
  EXPECT_EQ(lines[1], "3 4 " + DistStr(3, 4));
  EXPECT_EQ(lines[2], "5 6 " + DistStr(5, 6));
}

TEST_F(ToolTest, PartitionBuildAndCatalogServe) {
  // A disconnected graph (two ER halves + isolated vertices) through
  // partition-build, then served as two named datasets with the catalog
  // verbs over stdin pipes.
  const Graph dg =
      MakeTestGraph(Family::kDisconnected, 120, /*weighted=*/true, 31);
  const std::string dg_path = dir_ + "/dg.txt";
  ASSERT_TRUE(WriteEdgeListText(dg, dg_path).ok());
  const std::string cat_dir = dir_ + "/cat";
  std::string out;
  ASSERT_EQ(RunCommand(tool_ + " partition-build --graph " + dg_path +
                           " --catalog " + cat_dir,
                       &out),
            0)
      << out;
  EXPECT_NE(out.find("saved catalog to"), std::string::npos) << out;
  EXPECT_NE(out.find("components"), std::string::npos) << out;

  // Ground truth through the library over the same catalog directory.
  auto loaded = PartitionedIndex::Load(cat_dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto dist = [&](VertexId s, VertexId t) {
    Distance d = 0;
    EXPECT_TRUE(loaded->Query(s, t, &d).ok());
    return d == kInfDistance ? std::string("unreachable") : std::to_string(d);
  };
  // One same-component, one cross-component pair.
  const VertexId cross = dg.NumVertices() / 2 + 1;
  ASSERT_NE(loaded->ComponentOf(0), loaded->ComponentOf(cross));

  const std::string script =
      "printf '0 1\\n0 " + std::to_string(cross) +
      "\\nuse beta\\n0 1\\nreload alpha\\nuse nope\\ndatasets\\nstats\\n"
      "quit\\n'";
  ASSERT_EQ(RunCommand(script + " | " + tool_ + " serve --dataset alpha=" +
                           cat_dir + " --dataset beta=" + cat_dir +
                           " --cache-mb 4",
                       &out),
            0);
  const std::vector<std::string> lines = SplitLines(out);
  ASSERT_EQ(lines.size(), 8u) << out;
  EXPECT_EQ(lines[0], dist(0, 1));
  EXPECT_EQ(lines[1], "unreachable");
  EXPECT_EQ(lines[2], "ok: using beta");
  EXPECT_EQ(lines[3], dist(0, 1));  // same dirs → same answers
  EXPECT_EQ(lines[4], "ok: reloaded alpha");
  EXPECT_EQ(lines[5], "error: NotFound: unknown dataset nope");
  EXPECT_EQ(lines[6].rfind("datasets:", 0), 0u) << lines[6];
  EXPECT_NE(lines[6].find("alpha:ready:"), std::string::npos) << lines[6];
  EXPECT_NE(lines[6].find("beta:ready:"), std::string::npos) << lines[6];
  EXPECT_EQ(lines[7].rfind("stats:", 0), 0u) << lines[7];
  EXPECT_NE(lines[7].find("alpha.requests=2"), std::string::npos) << lines[7];
  EXPECT_NE(lines[7].find("beta.requests=1"), std::string::npos) << lines[7];
  EXPECT_NE(lines[7].find("alpha.reloads=1"), std::string::npos) << lines[7];
}

TEST_F(ToolTest, ServeMetricsVerbSingleIndexMode) {
  std::string out;
  const std::string script = "printf '1 2\\n1 2\\nmetrics\\nquit\\n'";
  ASSERT_EQ(RunCommand(script + " | " + tool_ + " serve --index " +
                           index_dir_ + " --cache-mb 8 --slow-query-ms 5000",
                       &out),
            0);
  const std::vector<std::string> lines = SplitLines(out);
  ASSERT_GE(lines.size(), 4u) << out;
  EXPECT_EQ(lines[0], DistStr(1, 2));
  EXPECT_EQ(lines[1], DistStr(1, 2));
  // The Prometheus blob ends with exactly "# EOF" and nothing after.
  EXPECT_EQ(lines.back(), "# EOF") << out;
  EXPECT_NE(out.find("# TYPE islabel_server_requests_total counter"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("islabel_server_requests_total 3"), std::string::npos)
      << out;
  EXPECT_NE(out.find(
                "islabel_server_request_seconds_count{verb=\"distance\"} 2"),
            std::string::npos)
      << out;
  // Single-index mode bridges the engine pool and the cache too.
  EXPECT_NE(out.find("islabel_pool_engines_created_total"), std::string::npos)
      << out;
  EXPECT_NE(out.find("islabel_cache_hits_total"), std::string::npos) << out;
}

TEST_F(ToolTest, ServeMetricsVerbCatalogMode) {
  const Graph dg =
      MakeTestGraph(Family::kDisconnected, 120, /*weighted=*/true, 31);
  const std::string dg_path = dir_ + "/dg.txt";
  ASSERT_TRUE(WriteEdgeListText(dg, dg_path).ok());
  const std::string cat_dir = dir_ + "/cat";
  std::string out;
  ASSERT_EQ(RunCommand(tool_ + " partition-build --graph " + dg_path +
                           " --catalog " + cat_dir,
                       &out),
            0)
      << out;
  const std::string script = "printf '0 1\\nuse beta\\n0 1\\nmetrics\\nquit\\n'";
  ASSERT_EQ(RunCommand(script + " | " + tool_ + " serve --dataset alpha=" +
                           cat_dir + " --dataset beta=" + cat_dir +
                           " --cache-mb 4",
                       &out),
            0);
  const std::vector<std::string> lines = SplitLines(out);
  EXPECT_EQ(lines.back(), "# EOF") << out;
  // Dataset routing shows up as labels in the catalog's registry.
  EXPECT_NE(out.find("islabel_dataset_requests_total{dataset=\"alpha\"} 1"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("islabel_dataset_requests_total{dataset=\"beta\"} 1"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("islabel_cache_hits_total{dataset=\"alpha\""),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("islabel_server_requests_total 4"), std::string::npos)
      << out;
}

TEST_F(ToolTest, PartitionBuildChAndAutoBackendsServeUnchangedProtocol) {
  // A road-like grid through `partition-build --backend ch`, then
  // `--backend auto` (which must also pick CH here) — both catalogs are
  // served through the unchanged wire protocol and answer exactly like
  // the library.
  const Graph grid = MakeTestGraph(Family::kGrid, 140, /*weighted=*/true, 37);
  const std::string grid_path = dir_ + "/grid.txt";
  ASSERT_TRUE(WriteEdgeListText(grid, grid_path).ok());

  for (const std::string backend : {"ch", "auto"}) {
    SCOPED_TRACE(backend);
    const std::string cat_dir = dir_ + "/cat_" + backend;
    std::string out;
    ASSERT_EQ(RunCommand(tool_ + " partition-build --graph " + grid_path +
                             " --catalog " + cat_dir + " --backend " +
                             backend,
                         &out),
              0)
        << out;
    // The per-part summary names the chosen backend.
    EXPECT_NE(out.find("backend=ch"), std::string::npos) << out;

    auto loaded = PartitionedIndex::Load(cat_dir);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_GE(loaded->num_parts(), 1u);
    EXPECT_EQ(loaded->part_backend(0), BackendKind::kCH);
    auto dist = [&](VertexId s, VertexId t) {
      Distance d = 0;
      EXPECT_TRUE(loaded->Query(s, t, &d).ok());
      return d == kInfDistance ? std::string("unreachable")
                               : std::to_string(d);
    };

    const std::string script = "printf '0 1\\n2 9\\npath 0 5\\nquit\\n'";
    ASSERT_EQ(RunCommand(script + " | " + tool_ + " serve --dataset g=" +
                             cat_dir,
                         &out),
              0);
    const std::vector<std::string> lines = SplitLines(out);
    ASSERT_EQ(lines.size(), 3u) << out;
    EXPECT_EQ(lines[0], dist(0, 1));
    EXPECT_EQ(lines[1], dist(2, 9));
    EXPECT_EQ(lines[2].rfind(dist(0, 5) + ":", 0), 0u) << lines[2];
  }
}

TEST_F(ToolTest, PartitionBuildRejectsUnknownBackend) {
  std::string out;
  EXPECT_EQ(RunCommand(tool_ + " partition-build --graph " + graph_path_ +
                           " --catalog " + dir_ + "/nope --backend bogus",
                       &out),
            2);
}

TEST_F(ToolTest, ServeSingleIndexRejectsCatalogVerbs) {
  std::string out;
  const std::string script = "printf 'use other\\n1 2\\nquit\\n'";
  ASSERT_EQ(RunCommand(script + " | " + tool_ + " serve --index " +
                           index_dir_,
                       &out),
            0);
  const std::vector<std::string> lines = SplitLines(out);
  ASSERT_EQ(lines.size(), 2u) << out;
  EXPECT_EQ(lines[0], "error: NotSupported: no catalog (single-dataset server)");
  EXPECT_EQ(lines[1], DistStr(1, 2));
}

TEST_F(ToolTest, BuildAcceptsDimacsGraphs) {
  const std::string gr_path = dir_ + "/g.gr";
  ASSERT_TRUE(WriteDimacsGraph(graph_, gr_path).ok());
  const std::string gr_index = dir_ + "/gr_idx";
  std::string out;
  ASSERT_EQ(RunCommand(tool_ + " build --graph " + gr_path + " --index " +
                           gr_index,
                       &out),
            0)
      << out;
  auto loaded = ISLabelIndex::Load(gr_index);
  ASSERT_TRUE(loaded.ok());
  // The DIMACS round trip indexes the same graph: answers match.
  Distance d = 0;
  ASSERT_TRUE(loaded->Query(1, 2, &d).ok());
  EXPECT_EQ(d, Dist(1, 2));
}

TEST_F(ToolTest, GenStatsRoundTrip) {
  const std::string gen_path = dir_ + "/gen.txt";
  std::string out;
  ASSERT_EQ(RunCommand(tool_ + " gen --type grid --n 100 --out " + gen_path,
                       &out),
            0);
  EXPECT_NE(out.find("wrote"), std::string::npos) << out;
  ASSERT_EQ(RunCommand(tool_ + " stats --graph " + gen_path, &out), 0);
  EXPECT_NE(out.find("vertices:"), std::string::npos) << out;

  // A .gr output writes DIMACS, so the tool round-trips its own file.
  const std::string gr_path = dir_ + "/gen.gr";
  ASSERT_EQ(RunCommand(tool_ + " gen --type grid --n 100 --out " + gr_path,
                       &out),
            0);
  ASSERT_EQ(RunCommand(tool_ + " stats --graph " + gr_path, &out), 0);
  EXPECT_NE(out.find("vertices:"), std::string::npos) << out;
}

}  // namespace
}  // namespace islabel
