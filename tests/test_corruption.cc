// Durability tests: every persistence format is attacked with
// truncation and bit flips, and every loader must answer with an error
// status — never a crash, a hang, or a bad_alloc. Formats covered:
//
//   * the monolithic index directory (meta.islm / labels.isl / core.islg
//     — labels.isl is the LabelStore container, read both eagerly and
//     in disk-resident mode),
//   * the partitioned catalog manifest (partition.islp, current v2 and
//     the v1 compatibility path) plus the per-part files it points at,
//   * the CH backend container (ch.islc),
//   * the replication snapshot container (repl/snapshot.h), whose
//     contract is the strictest: EVERY mutation of a valid container is
//     rejected as Corruption, exhaustively verified byte by byte.
//
// Truncations always fail: a prefix of a valid file can never be a
// valid file in any of these length-checked formats. Bit flips must
// never crash, but a flip in payload bytes that a format does not
// checksum may legitimately decode — those assertions are
// "ok-or-error", with the crash/hang the thing being tested.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "backends/ch_index.h"
#include "catalog/partitioned_index.h"
#include "core/index.h"
#include "repl/snapshot.h"
#include "tests/test_common.h"

namespace islabel {
namespace {

namespace fs = std::filesystem;

using testing::Family;
using testing::MakeTestGraph;

class CorruptionTest : public ::testing::Test {
 public:  // the AttackFile free function uses the offset helpers
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("islabel_corruption_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::create_directories(dir_);
    graph_ = MakeTestGraph(Family::kGrid, 64, /*weighted=*/true, 7);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  static std::string ReadFile(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  static void WriteFile(const fs::path& p, const std::string& contents) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    ASSERT_TRUE(out.good()) << p;
  }

  /// Truncation points that cover the interesting regions of a file:
  /// empty, a partial header, the middle, and one-byte-short.
  static std::vector<std::size_t> TruncationPoints(std::size_t size) {
    std::vector<std::size_t> points = {0};
    for (const std::size_t p :
         {std::size_t{1}, std::size_t{3}, std::size_t{7}, size / 4,
          size / 2, size - 1}) {
      if (p > 0 && p < size) points.push_back(p);
    }
    return points;
  }

  /// Flip offsets spread across a file: the header, early payload, the
  /// middle, and the tail.
  static std::vector<std::size_t> FlipOffsets(std::size_t size) {
    std::vector<std::size_t> offsets;
    for (const std::size_t p :
         {std::size_t{0}, std::size_t{1}, std::size_t{4}, std::size_t{9},
          size / 3, size / 2, size - 2, size - 1}) {
      if (p < size) offsets.push_back(p);
    }
    return offsets;
  }

  std::string dir_;
  Graph graph_;
};

// ---------------------------------------------------------------------------
// Shared attack driver: mutate one file inside an index directory, run
// the loader, restore the original bytes.
// ---------------------------------------------------------------------------

/// Runs `load` (which must return ok on the intact directory) against
/// every truncation of `file`, asserting failure-without-crash each
/// time, then against bit flips, asserting no crash. `file` is restored
/// afterwards.
template <typename LoadFn>
void AttackFile(const fs::path& file, LoadFn load) {
  std::ifstream in(file, std::ios::binary);
  ASSERT_TRUE(in.good()) << file;
  const std::string original((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  in.close();
  ASSERT_FALSE(original.empty()) << file << " is empty; nothing to attack";

  for (const std::size_t cut : CorruptionTest::TruncationPoints(
           original.size())) {
    {
      std::ofstream out(file, std::ios::binary | std::ios::trunc);
      out.write(original.data(), static_cast<std::streamsize>(cut));
    }
    const Status st = load();
    EXPECT_FALSE(st.ok()) << file.filename() << " truncated to " << cut
                          << " bytes still loads";
    EXPECT_FALSE(st.message().empty());
  }

  for (const std::size_t off : CorruptionTest::FlipOffsets(
           original.size())) {
    std::string mutated = original;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x20);
    {
      std::ofstream out(file, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(),
                static_cast<std::streamsize>(mutated.size()));
    }
    // A flip may land in unchecked payload and decode cleanly; the
    // contract under test is no crash / no hang / no bad_alloc.
    (void)load();
  }

  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(original.data(),
              static_cast<std::streamsize>(original.size()));
  }
  EXPECT_TRUE(load().ok()) << file.filename()
                           << " restore failed: attack harness bug";
}

// ---------------------------------------------------------------------------
// Monolithic index directory (meta.islm / labels.isl / core.islg)
// ---------------------------------------------------------------------------

TEST_F(CorruptionTest, MonolithicIndexSurvivesMutilation) {
  auto built = ISLabelIndex::Build(graph_);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(Path("mono")).ok());

  for (const char* name : {"meta.islm", "labels.isl", "core.islg"}) {
    SCOPED_TRACE(name);
    AttackFile(fs::path(Path("mono")) / name, [&] {
      return ISLabelIndex::Load(Path("mono")).status();
    });
  }
}

TEST_F(CorruptionTest, DiskResidentLabelStoreSurvivesMutilation) {
  // Disk-resident mode keeps labels.isl open and reads labels on
  // demand — the load-time validation must still reject damage to the
  // store header and directory.
  auto built = ISLabelIndex::Build(graph_);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(Path("disk")).ok());

  AttackFile(fs::path(Path("disk")) / "labels.isl", [&] {
    auto loaded = ISLabelIndex::Load(Path("disk"),
                                     /*labels_in_memory=*/false);
    if (!loaded.ok()) return loaded.status();
    // Load may defer payload reads; force every label through the
    // store. Per-label reads may fail on damage — they must not crash.
    Distance d = 0;
    for (VertexId v = 0; v < loaded->NumVertices(); ++v) {
      (void)loaded->Query(0, v, &d);
    }
    return Status::OK();
  });
}

// ---------------------------------------------------------------------------
// Partitioned catalog (partition.islp v2 + v1, per-part files)
// ---------------------------------------------------------------------------

TEST_F(CorruptionTest, PartitionManifestV2SurvivesMutilation) {
  auto built = PartitionedIndex::Build(graph_);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(Path("cat")).ok());

  AttackFile(fs::path(Path("cat")) / "partition.islp", [&] {
    return PartitionedIndex::Load(Path("cat")).status();
  });
}

TEST_F(CorruptionTest, PartitionManifestV1SurvivesMutilation) {
  // The v1 compatibility path: rewrite the manifest's version field to
  // 1 and strip the v2-only backend column if present — the loader
  // accepts v1 manifests, so the v1 decode path must be as hardened as
  // v2. Building the file by hand would duplicate the writer; instead,
  // flip the on-disk version dword to 1 and require the loader to
  // either parse it as v1 or reject it — and survive every truncation
  // of the result.
  auto built = PartitionedIndex::Build(graph_);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(Path("cat")).ok());
  const fs::path manifest = fs::path(Path("cat")) / "partition.islp";
  std::string bytes = ReadFile(manifest);
  ASSERT_GT(bytes.size(), 8u);

  // Find the version dword (value 2) in the first 16 bytes and set it
  // to 1; if the probe misses, the format changed — fail loudly.
  bool rewrote = false;
  for (std::size_t off = 4; off + 4 <= 16 && off + 4 <= bytes.size();
       off += 4) {
    if (static_cast<unsigned char>(bytes[off]) == 2 && bytes[off + 1] == 0 &&
        bytes[off + 2] == 0 && bytes[off + 3] == 0) {
      bytes[off] = 1;
      rewrote = true;
      break;
    }
  }
  ASSERT_TRUE(rewrote) << "partition.islp version dword not found";
  WriteFile(manifest, bytes);
  // The mutated manifest is either a valid v1 file or rejected outright
  // — both acceptable; crashing is not.
  const Status v1 = PartitionedIndex::Load(Path("cat")).status();
  if (v1.ok()) {
    // It parses as v1: run the truncation battery on the prefix a v1
    // parse actually consumes (a v1 reader ignores the v2 backend-name
    // tail, so cuts inside that tail may legitimately still load).
    for (const std::size_t cut :
         {std::size_t{0}, std::size_t{1}, std::size_t{5}, std::size_t{12},
          bytes.size() / 4, bytes.size() / 2}) {
      WriteFile(manifest, bytes.substr(0, cut));
      EXPECT_FALSE(PartitionedIndex::Load(Path("cat")).ok())
          << "v1 manifest truncated to " << cut << " bytes still loads";
    }
  }
}

TEST_F(CorruptionTest, PartFilesSurviveMutilation) {
  auto built = PartitionedIndex::Build(graph_);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(Path("cat")).ok());
  const fs::path part_meta =
      fs::path(Path("cat")) / "part00000" / "meta.islm";
  ASSERT_TRUE(fs::exists(part_meta));
  AttackFile(part_meta, [&] {
    return PartitionedIndex::Load(Path("cat")).status();
  });
}

// ---------------------------------------------------------------------------
// CH backend container (ch.islc)
// ---------------------------------------------------------------------------

TEST_F(CorruptionTest, ChContainerSurvivesMutilation) {
  auto built = CHIndex::Build(graph_);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(Path("ch")).ok());

  AttackFile(fs::path(Path("ch")) / "ch.islc", [&] {
    return CHIndex::Load(Path("ch")).status();
  });
}

// ---------------------------------------------------------------------------
// Replication snapshot container: the exhaustive battery
// ---------------------------------------------------------------------------

class SnapshotCorruptionTest : public CorruptionTest {
 protected:
  /// A small but structurally complete container: several files,
  /// subdirectories, an empty file, binary bytes.
  std::string MakeBlob() {
    const fs::path src = Path("snap_src");
    fs::create_directories(src / "sub");
    WriteFile(src / "manifest", "header\x01\x02\x03");
    WriteFile(src / "sub" / "payload", std::string(64, '\xAB'));
    WriteFile(src / "empty", "");
    std::string blob;
    EXPECT_TRUE(repl::BuildSnapshot(src.string(), &blob).ok());
    EXPECT_TRUE(repl::ValidateSnapshot(blob, nullptr).ok());
    return blob;
  }
};

TEST_F(SnapshotCorruptionTest, EveryTruncationIsCorruption) {
  const std::string blob = MakeBlob();
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    const Status st =
        repl::ValidateSnapshot(std::string_view(blob).substr(0, cut),
                               nullptr);
    EXPECT_TRUE(st.IsCorruption())
        << "truncation to " << cut << " bytes: " << st.ToString();
    EXPECT_FALSE(st.message().empty());
  }
}

TEST_F(SnapshotCorruptionTest, EveryBitFlipIsCorruption) {
  const std::string blob = MakeBlob();
  for (std::size_t off = 0; off < blob.size(); ++off) {
    for (const unsigned mask : {0x01u, 0x80u}) {
      std::string mutated = blob;
      mutated[off] = static_cast<char>(
          static_cast<unsigned char>(mutated[off]) ^ mask);
      const Status st = repl::ValidateSnapshot(mutated, nullptr);
      EXPECT_TRUE(st.IsCorruption())
          << "flip 0x" << std::hex << mask << std::dec << " at offset "
          << off << " not rejected: " << st.ToString();
    }
  }
}

TEST_F(SnapshotCorruptionTest, ExtensionIsCorruption) {
  const std::string blob = MakeBlob();
  for (const char extra : {'\0', 'x'}) {
    EXPECT_TRUE(repl::ValidateSnapshot(blob + extra, nullptr).IsCorruption());
  }
}

TEST_F(SnapshotCorruptionTest, CorruptInstallNeverWrites) {
  const std::string blob = MakeBlob();
  int rejected = 0;
  for (std::size_t off = 0; off < blob.size(); off += 7) {
    std::string mutated = blob;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x10);
    const std::string dest = Path("snap_dst");
    if (!repl::InstallSnapshot(mutated, dest).ok()) {
      ++rejected;
      EXPECT_FALSE(fs::exists(dest))
          << "rejected install at offset " << off << " left files behind";
    }
    std::error_code ec;
    fs::remove_all(dest, ec);
  }
  EXPECT_GT(rejected, 0);
}

TEST_F(SnapshotCorruptionTest, HostilePathsAreRejected) {
  // Hand-craft containers whose paths escape the destination; the
  // validator must refuse them regardless of checksums. Build a valid
  // container, then verify the path-safety property indirectly: a
  // genuine container only carries relative, dot-dot-free paths.
  const std::string blob = MakeBlob();
  repl::SnapshotInfo info;
  ASSERT_TRUE(repl::ValidateSnapshot(blob, &info).ok());
  for (const std::string& path : info.paths) {
    EXPECT_FALSE(path.empty());
    EXPECT_NE(path.front(), '/') << path;
    EXPECT_EQ(path.find(".."), std::string::npos) << path;
  }
}

}  // namespace
}  // namespace islabel
