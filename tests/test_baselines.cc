// Baseline cross-validation: Dijkstra vs BFS, bidirectional Dijkstra,
// VC-Index (SSSP and P2P), and Pruned Landmark Labeling all agree.

#include <gtest/gtest.h>

#include <tuple>

#include "baseline/bfs.h"
#include "baseline/bidijkstra.h"
#include "baseline/contraction_hierarchy.h"
#include "baseline/dijkstra.h"
#include "baseline/pll.h"
#include "baseline/vc_index.h"
#include "tests/test_common.h"

namespace islabel {
namespace {

using testing::Family;
using testing::MakeTestGraph;
using testing::SampleQueryPairs;

TEST(Dijkstra, MatchesBfsOnUnitWeights) {
  Graph g = MakeTestGraph(Family::kRMat, 256, false, 1);
  for (VertexId s : {0u, 5u, 100u}) {
    SsspResult d = DijkstraSssp(g, s);
    std::vector<Distance> b = BfsDistances(g, s);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(d.dist[t], b[t]) << "source " << s << " target " << t;
    }
  }
}

TEST(Dijkstra, ParentsFormShortestPathTree) {
  Graph g = MakeTestGraph(Family::kErdosRenyi, 150, true, 2);
  SsspResult r = DijkstraSssp(g, 0);
  for (VertexId t = 0; t < g.NumVertices(); ++t) {
    if (r.dist[t] == kInfDistance || t == 0) continue;
    const VertexId p = r.parent[t];
    ASSERT_NE(p, kInvalidVertex);
    ASSERT_EQ(r.dist[p] + g.EdgeWeight(p, t), r.dist[t]);
  }
}

TEST(Dijkstra, P2PEarlyStopMatchesSssp) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 200, true, 3);
  SsspResult full = DijkstraSssp(g, 7);
  for (VertexId t = 0; t < g.NumVertices(); t += 11) {
    std::uint64_t settled = 0;
    EXPECT_EQ(DijkstraP2P(g, 7, t, &settled), full.dist[t]);
    EXPECT_LE(settled, g.NumVertices());
  }
}

TEST(Dijkstra, DirectedMatchesUndirectedOnSymmetricArcs) {
  Graph g = MakeTestGraph(Family::kGrid, 100, true, 4);
  std::vector<Arc> arcs;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (std::size_t i = 0; i < g.Neighbors(u).size(); ++i) {
      arcs.emplace_back(u, g.Neighbors(u)[i], g.NeighborWeights(u)[i]);
    }
  }
  DiGraph dg = DiGraph::FromArcs(std::move(arcs), g.NumVertices());
  SsspResult a = DijkstraSssp(g, 13);
  SsspResult b = DijkstraSssp(dg, 13);
  EXPECT_EQ(a.dist, b.dist);
}

class BiDijkstraTest
    : public ::testing::TestWithParam<std::tuple<Family, bool>> {};

TEST_P(BiDijkstraTest, MatchesUnidirectional) {
  const auto [family, weighted] = GetParam();
  Graph g = MakeTestGraph(family, 200, weighted, 5);
  BidirectionalDijkstra bidij(&g);
  for (auto [s, t] : SampleQueryPairs(g, 120, 7)) {
    ASSERT_EQ(bidij.Query(s, t), DijkstraP2P(g, s, t))
        << "(" << s << "," << t << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, BiDijkstraTest,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi, Family::kRMat,
                                         Family::kGrid, Family::kStar,
                                         Family::kDisconnected,
                                         Family::kPath),
                       ::testing::Bool()),
    ([](const auto& info) {
      const auto [family, weighted] = info.param;
      return std::string(testing::FamilyName(family)) +
             (weighted ? "_Weighted" : "_Unit");
    }));

// ---------- VC-Index ----------

class VcIndexTest
    : public ::testing::TestWithParam<std::tuple<Family, bool, int>> {};

TEST_P(VcIndexTest, SsspMatchesDijkstra) {
  const auto [family, weighted, seed] = GetParam();
  Graph g = MakeTestGraph(family, 150, weighted, seed);
  auto built = VcIndex::Build(g);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  VcIndex index = std::move(built).value();
  for (VertexId s = 0; s < std::min<VertexId>(g.NumVertices(), 10); ++s) {
    SsspResult expect = DijkstraSssp(g, s);
    std::vector<Distance> got = index.Sssp(s);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(got[t], expect.dist[t])
          << "source " << s << " target " << t;
    }
  }
}

TEST_P(VcIndexTest, P2PMatchesDijkstra) {
  const auto [family, weighted, seed] = GetParam();
  Graph g = MakeTestGraph(family, 150, weighted, seed);
  auto built = VcIndex::Build(g);
  ASSERT_TRUE(built.ok());
  VcIndex index = std::move(built).value();
  for (auto [s, t] : SampleQueryPairs(g, 100, seed * 19 + 1)) {
    ASSERT_EQ(index.QueryP2P(s, t), DijkstraP2P(g, s, t))
        << "(" << s << "," << t << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, VcIndexTest,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi, Family::kRMat,
                                         Family::kGrid, Family::kStar,
                                         Family::kTree,
                                         Family::kDisconnected),
                       ::testing::Bool(), ::testing::Values(1, 2)),
    ([](const auto& info) {
      const auto [family, weighted, seed] = info.param;
      return std::string(testing::FamilyName(family)) +
             (weighted ? "_W_" : "_U_") + std::to_string(seed);
    }));

TEST(VcIndex, ReportsStructure) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 400, false, 9);
  auto built = VcIndex::Build(g);
  ASSERT_TRUE(built.ok());
  EXPECT_GE(built->num_levels(), 2u);
  EXPECT_LT(built->top_vertices(), g.NumVertices());
  EXPECT_GT(built->SizeBytes(), 0u);
}

TEST(VcIndex, P2PTouchesMoreThanNeeded) {
  // The P2P conversion still sweeps whole levels — the inefficiency that
  // motivates IS-LABEL (§3.1 [11]). For a low-level target the touched
  // count must exceed the plain early-stop Dijkstra's.
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 500, false, 10);
  auto built = VcIndex::Build(g);
  ASSERT_TRUE(built.ok());
  VcIndex index = std::move(built).value();
  std::uint64_t total_touched = 0;
  for (auto [s, t] : SampleQueryPairs(g, 40, 3)) {
    std::uint64_t touched = 0;
    index.QueryP2P(s, t, &touched);
    total_touched += touched;
  }
  EXPECT_GT(total_touched, 0u);
}

// ---------- Contraction Hierarchies ----------

class ChTest : public ::testing::TestWithParam<std::tuple<Family, bool>> {};

TEST_P(ChTest, MatchesDijkstra) {
  const auto [family, weighted] = GetParam();
  Graph g = MakeTestGraph(family, 150, weighted, 8);
  auto built = ContractionHierarchy::Build(g);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ContractionHierarchy ch = std::move(built).value();
  for (VertexId s = 0; s < std::min<VertexId>(g.NumVertices(), 8); ++s) {
    SsspResult expect = DijkstraSssp(g, s);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(ch.Query(s, t), expect.dist[t]) << "(" << s << "," << t
                                                << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ChTest,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi, Family::kGrid,
                                         Family::kStar, Family::kTree,
                                         Family::kRMat,
                                         Family::kDisconnected),
                       ::testing::Bool()),
    ([](const auto& info) {
      const auto [family, weighted] = info.param;
      return std::string(testing::FamilyName(family)) +
             (weighted ? "_Weighted" : "_Unit");
    }));

TEST(ContractionHierarchies, GridIsCheapToContract) {
  // Road-like topology: few shortcuts per node, small upward degree.
  Graph g = MakeTestGraph(Family::kGrid, 400, true, 3);
  auto built = ContractionHierarchy::Build(g);
  ASSERT_TRUE(built.ok());
  EXPECT_LT(built->MeanUpDegree(), 8.0);
  std::uint64_t settled = 0;
  (void)built->Query(0, g.NumVertices() - 1, &settled);
  EXPECT_LT(settled, g.NumVertices() / 2);
}

TEST(ContractionHierarchies, SettledCountsStaySmallOnGrid) {
  Graph g = MakeTestGraph(Family::kGrid, 900, false, 4);
  auto built = ContractionHierarchy::Build(g);
  ASSERT_TRUE(built.ok());
  Rng rng(5);
  std::uint64_t total_settled = 0;
  for (int i = 0; i < 50; ++i) {
    VertexId s = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    VertexId t = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    std::uint64_t settled = 0;
    ASSERT_EQ(built->Query(s, t, &settled), DijkstraP2P(g, s, t));
    total_settled += settled;
  }
  // CH's upward searches touch a tiny fraction of a road-like graph.
  EXPECT_LT(total_settled / 50, g.NumVertices() / 4);
}

// ---------- PLL ----------

class PllTest : public ::testing::TestWithParam<std::tuple<Family, bool>> {};

TEST_P(PllTest, MatchesDijkstra) {
  const auto [family, weighted] = GetParam();
  Graph g = MakeTestGraph(family, 150, weighted, 6);
  auto built = PrunedLandmarkLabeling::Build(g);
  ASSERT_TRUE(built.ok());
  PrunedLandmarkLabeling pll = std::move(built).value();
  for (VertexId s = 0; s < std::min<VertexId>(g.NumVertices(), 8); ++s) {
    SsspResult expect = DijkstraSssp(g, s);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(pll.Query(s, t), expect.dist[t])
          << "(" << s << "," << t << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, PllTest,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi, Family::kRMat,
                                         Family::kGrid, Family::kStar,
                                         Family::kTree,
                                         Family::kDisconnected),
                       ::testing::Bool()),
    ([](const auto& info) {
      const auto [family, weighted] = info.param;
      return std::string(testing::FamilyName(family)) +
             (weighted ? "_Weighted" : "_Unit");
    }));

TEST(Pll, LabelsAreModest) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 300, false, 7);
  auto built = PrunedLandmarkLabeling::Build(g);
  ASSERT_TRUE(built.ok());
  // Pruning must keep labels well below the quadratic worst case.
  EXPECT_LT(built->MeanLabelSize(), 64.0);
  EXPECT_GT(built->TotalEntries(), g.NumVertices());  // at least self+some
}

}  // namespace
}  // namespace islabel
