// Tests for the partitioned index catalog: the component partitioner and
// its id remapping, PartitionedIndex query equivalence against a
// monolithic ISLabelIndex (distances, paths, batches, one-to-many, fresh
// and reloaded), the O(1) cross-component answer path, Catalog
// multi-dataset hosting with background load and hot-swap reload, the
// catalog protocol verbs, and a loopback TCP fixture where concurrent
// clients query across live reloads. The whole file runs under the TSan
// preset in CI.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/partitioned_index.h"
#include "core/index.h"
#include "graph/components.h"
#include "server/dispatcher.h"
#include "server/protocol.h"
#include "server/query_cache.h"
#include "server/tcp_server.h"
#include "tests/test_common.h"

namespace islabel {
namespace {

using server::ParseRequest;
using server::QueryCache;
using server::Request;
using server::RequestDispatcher;
using server::RequestKind;
using server::TcpServer;
using server::TcpServerOptions;
using testing::AssertValidPath;
using testing::Family;
using testing::MakeTestGraph;
using testing::SampleQueryPairs;

/// Deterministic disconnected test graph: two ER components plus
/// trailing isolated vertices (Family::kDisconnected).
Graph DisconnectedGraph(VertexId n, std::uint64_t seed) {
  return MakeTestGraph(Family::kDisconnected, n, /*weighted=*/true, seed);
}

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("islabel_catalog_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// ComponentPartitioner
// ---------------------------------------------------------------------------

TEST(Partitioner, MapsEveryVertexBijectively) {
  Graph g = DisconnectedGraph(200, 5);
  GraphPartition p = ComponentPartitioner::Partition(g);
  const ComponentsResult comps = FindComponents(g);
  ASSERT_EQ(p.num_components, comps.num_components);
  ASSERT_EQ(p.component.size(), g.NumVertices());

  std::uint64_t covered = 0;
  for (std::uint32_t i = 0; i < p.parts.size(); ++i) {
    const GraphPart& part = p.parts[i];
    ASSERT_EQ(part.graph.NumVertices(), part.global_ids.size());
    for (VertexId local = 0; local < part.global_ids.size(); ++local) {
      const VertexId v = part.global_ids[local];
      EXPECT_EQ(p.component[v], part.component);
      EXPECT_EQ(p.local_id[v], local);
      EXPECT_EQ(p.part_of_component[p.component[v]], i);
    }
    // Local ids ascend with global ids (deterministic remap).
    for (VertexId local = 1; local < part.global_ids.size(); ++local) {
      EXPECT_LT(part.global_ids[local - 1], part.global_ids[local]);
    }
    covered += part.global_ids.size();
  }
  // Vertices outside every part are exactly the singletons.
  std::uint64_t singletons = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (p.part_of_component[p.component[v]] == GraphPartition::kNoPart) {
      EXPECT_EQ(g.Degree(v), 0u);
      ++singletons;
    }
  }
  EXPECT_EQ(covered + singletons, g.NumVertices());
}

TEST(Partitioner, InducedEdgesPreserveWeights) {
  Graph g = DisconnectedGraph(120, 9);
  GraphPartition p = ComponentPartitioner::Partition(g);
  std::uint64_t edges = 0;
  for (const GraphPart& part : p.parts) {
    edges += part.graph.NumEdges();
    for (VertexId lu = 0; lu < part.graph.NumVertices(); ++lu) {
      auto nbrs = part.graph.Neighbors(lu);
      auto ws = part.graph.NeighborWeights(lu);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        EXPECT_EQ(g.EdgeWeight(part.global_ids[lu], part.global_ids[nbrs[i]]),
                  ws[i]);
      }
    }
  }
  EXPECT_EQ(edges, g.NumEdges());
}

// ---------------------------------------------------------------------------
// PartitionedIndex vs a monolithic ISLabelIndex
// ---------------------------------------------------------------------------

class PartitionedIndexTest : public CatalogTest {
 protected:
  void BuildBoth(VertexId n, std::uint64_t seed) {
    graph_ = DisconnectedGraph(n, seed);
    auto mono = ISLabelIndex::Build(graph_);
    ASSERT_TRUE(mono.ok());
    mono_ = std::make_unique<ISLabelIndex>(std::move(mono).value());
    auto part = PartitionedIndex::Build(graph_);
    ASSERT_TRUE(part.ok()) << part.status().ToString();
    part_ = std::make_unique<PartitionedIndex>(std::move(part).value());
    ASSERT_GT(part_->num_components(), 1u);
  }

  void ExpectDistancesMatch(PartitionedIndex* index) {
    const auto pairs = SampleQueryPairs(graph_, 300, 17);
    for (const auto& [s, t] : pairs) {
      Distance expect = 0, got = 0;
      ASSERT_TRUE(mono_->Query(s, t, &expect).ok());
      ASSERT_TRUE(index->Query(s, t, &got).ok());
      ASSERT_EQ(got, expect) << "(" << s << ", " << t << ")";
    }
  }

  Graph graph_;
  std::unique_ptr<ISLabelIndex> mono_;
  std::unique_ptr<PartitionedIndex> part_;
};

TEST_F(PartitionedIndexTest, DistancesMatchMonolithic) {
  BuildBoth(300, 11);
  ExpectDistancesMatch(part_.get());
}

TEST_F(PartitionedIndexTest, CrossComponentAnswersWithoutEngine) {
  BuildBoth(200, 3);
  // Pick one vertex per component of the two big parts.
  ASSERT_GE(part_->num_parts(), 2u);
  const VertexId s = part_->part_global_ids(0)[0];
  const VertexId t = part_->part_global_ids(1)[0];
  ASSERT_NE(part_->ComponentOf(s), part_->ComponentOf(t));

  const std::uint64_t routed_before = part_->routed_queries();
  const std::uint64_t cross_before = part_->cross_component_queries();
  Distance d = 0;
  ASSERT_TRUE(part_->Query(s, t, &d).ok());
  EXPECT_EQ(d, kInfDistance);
  std::vector<VertexId> path;
  ASSERT_TRUE(part_->ShortestPath(s, t, &path, &d).ok());
  EXPECT_EQ(d, kInfDistance);
  EXPECT_TRUE(path.empty());
  // Both answers came straight from the partition map: no sub-index was
  // touched.
  EXPECT_EQ(part_->routed_queries(), routed_before);
  EXPECT_EQ(part_->cross_component_queries(), cross_before + 2);

  // A same-component query does lease an engine.
  const VertexId t2 = part_->part_global_ids(0)[1];
  ASSERT_TRUE(part_->Query(s, t2, &d).ok());
  EXPECT_EQ(part_->routed_queries(), routed_before + 1);
}

TEST_F(PartitionedIndexTest, PathsRemapToOriginalIds) {
  BuildBoth(240, 7);
  const auto pairs = SampleQueryPairs(graph_, 120, 23);
  for (const auto& [s, t] : pairs) {
    Distance expect = 0;
    ASSERT_TRUE(mono_->Query(s, t, &expect).ok());
    std::vector<VertexId> path;
    Distance d = 0;
    ASSERT_TRUE(part_->ShortestPath(s, t, &path, &d).ok());
    ASSERT_EQ(d, expect);
    AssertValidPath(graph_, s, t, path, d);
  }
}

TEST_F(PartitionedIndexTest, BatchMatchesWithPerPairStatuses) {
  BuildBoth(200, 29);
  auto pairs = SampleQueryPairs(graph_, 150, 31);
  pairs.emplace_back(0, graph_.NumVertices() + 5);  // out of range
  pairs.emplace_back(1, 2);

  std::vector<Distance> expect, got;
  std::vector<Status> expect_st, got_st;
  ASSERT_TRUE(mono_->QueryBatch(pairs, &expect, 2, &expect_st).ok());
  ASSERT_TRUE(part_->QueryBatch(pairs, &got, 2, &got_st).ok());
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "pair " << i;
    EXPECT_EQ(got_st[i].code(), expect_st[i].code()) << "pair " << i;
  }
  // Without a statuses vector the first per-pair error surfaces.
  EXPECT_FALSE(part_->QueryBatch(pairs, &got).ok());
}

TEST_F(PartitionedIndexTest, OneToManyMixesComponents) {
  BuildBoth(200, 37);
  const VertexId s = part_->part_global_ids(0)[3];
  std::vector<VertexId> targets;
  for (VertexId t = 0; t < graph_.NumVertices(); t += 7) targets.push_back(t);

  std::vector<Distance> expect, got;
  ASSERT_TRUE(mono_->QueryOneToMany(s, targets, &expect).ok());
  ASSERT_TRUE(part_->QueryOneToMany(s, targets, &got).ok());
  EXPECT_EQ(got, expect);

  // Any invalid endpoint fails the whole call, as in the monolithic API.
  targets.push_back(graph_.NumVertices());
  EXPECT_TRUE(part_->QueryOneToMany(s, targets, &got).IsOutOfRange());
}

TEST_F(PartitionedIndexTest, SaveLoadRoundTripBothLabelModes) {
  BuildBoth(220, 41);
  ASSERT_TRUE(part_->Save(Path("cat")).ok());

  auto im = PartitionedIndex::Load(Path("cat"), /*labels_in_memory=*/true);
  ASSERT_TRUE(im.ok()) << im.status().ToString();
  EXPECT_EQ(im->num_parts(), part_->num_parts());
  EXPECT_EQ(im->num_components(), part_->num_components());
  ExpectDistancesMatch(&*im);

  auto disk = PartitionedIndex::Load(Path("cat"), /*labels_in_memory=*/false);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ExpectDistancesMatch(&*disk);
}

TEST_F(PartitionedIndexTest, LoadFallsBackToMonolithicDirectory) {
  BuildBoth(150, 43);
  ASSERT_TRUE(mono_->Save(Path("mono")).ok());
  auto loaded = PartitionedIndex::Load(Path("mono"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_parts(), 1u);
  EXPECT_EQ(loaded->NumVertices(), graph_.NumVertices());
  ExpectDistancesMatch(&*loaded);
}

TEST(PartitionedIndexEdge, AllIsolatedVertices) {
  EdgeList el;
  el.EnsureVertices(5);
  Graph g = Graph::FromEdgeList(el);
  auto built = PartitionedIndex::Build(g);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->num_parts(), 0u);
  EXPECT_EQ(built->num_components(), 5u);
  Distance d = 0;
  ASSERT_TRUE(built->Query(2, 2, &d).ok());
  EXPECT_EQ(d, 0u);
  ASSERT_TRUE(built->Query(1, 3, &d).ok());
  EXPECT_EQ(d, kInfDistance);
  EXPECT_EQ(built->routed_queries(), 0u);
  std::vector<VertexId> path;
  ASSERT_TRUE(built->ShortestPath(2, 2, &path, &d).ok());
  EXPECT_EQ(d, 0u);
  EXPECT_EQ(path, std::vector<VertexId>{2});
  EXPECT_TRUE(built->Query(5, 0, &d).IsOutOfRange());
}

TEST(PartitionedIndexEdge, EmptyGraph) {
  Graph g;
  auto built = PartitionedIndex::Build(g);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->NumVertices(), 0u);
  Distance d = 0;
  EXPECT_TRUE(built->Query(0, 0, &d).IsOutOfRange());
}

TEST(PartitionedIndexEdge, SingleGiantComponentMatchesMonolithic) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 250, /*weighted=*/true, 2);
  auto mono = ISLabelIndex::Build(g);
  ASSERT_TRUE(mono.ok());
  auto part = PartitionedIndex::Build(g);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->num_parts(), 1u);
  for (const auto& [s, t] : SampleQueryPairs(g, 150, 47)) {
    Distance expect = 0, got = 0;
    ASSERT_TRUE(mono->Query(s, t, &expect).ok());
    ASSERT_TRUE(part->Query(s, t, &got).ok());
    ASSERT_EQ(got, expect);
  }
}

TEST(PartitionedIndexEdge, ParallelBuildIsDeterministic) {
  Graph g = MakeTestGraph(Family::kDisconnected, 300, /*weighted=*/true, 53);
  PartitionOptions one_thread;
  one_thread.num_threads = 1;
  PartitionOptions four_threads;
  four_threads.num_threads = 4;
  auto a = PartitionedIndex::Build(g, one_thread);
  auto b = PartitionedIndex::Build(g, four_threads);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_parts(), b->num_parts());
  for (std::uint32_t p = 0; p < a->num_parts(); ++p) {
    EXPECT_EQ(a->part(p).Info().entries, b->part(p).Info().entries);
    EXPECT_EQ(a->part_global_ids(p), b->part_global_ids(p));
  }
  for (const auto& [s, t] : SampleQueryPairs(g, 100, 59)) {
    Distance da = 0, db = 0;
    ASSERT_TRUE(a->Query(s, t, &da).ok());
    ASSERT_TRUE(b->Query(s, t, &db).ok());
    ASSERT_EQ(da, db);
  }
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

class CatalogHostTest : public CatalogTest {
 protected:
  /// Builds a partitioned dataset from `g` and saves it under `name`.
  void SaveDataset(const Graph& g, const std::string& name) {
    auto built = PartitionedIndex::Build(g);
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE(built->Save(Path(name)).ok());
  }
};

TEST_F(CatalogHostTest, BackgroundLoadAndHandles) {
  const Graph ga = DisconnectedGraph(150, 61);
  const Graph gb = MakeTestGraph(Family::kGrid, 100, /*weighted=*/true, 67);
  SaveDataset(ga, "a");
  SaveDataset(gb, "b");

  Catalog catalog;
  ASSERT_TRUE(catalog.Add("a", Path("a")).ok());
  ASSERT_TRUE(catalog.Add("b", Path("b")).ok());
  EXPECT_TRUE(catalog.Add("a", Path("a")).IsInvalidArgument());
  ASSERT_TRUE(catalog.WaitReady().ok());
  EXPECT_EQ(catalog.Names(), (std::vector<std::string>{"a", "b"}));

  Catalog::Handle a = catalog.Get("a");
  Catalog::Handle b = catalog.Get("b");
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_FALSE(catalog.Get("missing"));
  EXPECT_EQ(a.state(), DatasetState::kReady);

  // Each handle answers for its own dataset.
  auto mono_a = ISLabelIndex::Build(ga);
  auto mono_b = ISLabelIndex::Build(gb);
  ASSERT_TRUE(mono_a.ok());
  ASSERT_TRUE(mono_b.ok());
  for (const auto& [s, t] : SampleQueryPairs(ga, 60, 71)) {
    Distance expect = 0, got = 0;
    ASSERT_TRUE(mono_a->Query(s, t, &expect).ok());
    ASSERT_TRUE(a.Query(s, t, &got).ok());
    ASSERT_EQ(got, expect);
  }
  for (const auto& [s, t] : SampleQueryPairs(gb, 60, 73)) {
    Distance expect = 0, got = 0;
    ASSERT_TRUE(mono_b->Query(s, t, &expect).ok());
    ASSERT_TRUE(b.Query(s, t, &got).ok());
    ASSERT_EQ(got, expect);
  }
  const auto infos = catalog.List();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].requests, 60u);
  EXPECT_EQ(infos[1].requests, 60u);
}

TEST_F(CatalogHostTest, LoadFailureIsReported) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add("bad", Path("does_not_exist")).ok());
  EXPECT_FALSE(catalog.WaitReady().ok());
  Catalog::Handle h = catalog.Get("bad");
  ASSERT_TRUE(h);
  EXPECT_EQ(h.state(), DatasetState::kFailed);
  Distance d = 0;
  Status st = h.Query(0, 0, &d);
  EXPECT_TRUE(st.IsFailedPrecondition());
  EXPECT_NE(st.message().find("failed to load"), std::string::npos);
  // Reload can rescue a failed dataset once the directory appears.
  SaveDataset(MakeTestGraph(Family::kPath, 10, true, 1), "does_not_exist");
  ASSERT_TRUE(catalog.Reload("bad").ok());
  EXPECT_EQ(h.state(), DatasetState::kReady);
  EXPECT_TRUE(h.Query(0, 1, &d).ok());
}

TEST_F(CatalogHostTest, HotSwapReloadChangesAnswersAndInvalidatesCache) {
  // v1: a weighted path, so the end-to-end distance is long.
  Graph v1 = MakeTestGraph(Family::kPath, 12, /*weighted=*/true, 4);
  SaveDataset(v1, "d");

  Catalog catalog;
  ASSERT_TRUE(catalog.Add("d", Path("d")).ok());
  ASSERT_TRUE(catalog.WaitReady().ok());
  auto cache = std::make_shared<QueryCache>();
  ASSERT_TRUE(catalog.SetDistanceCache("d", cache).ok());

  Catalog::Handle h = catalog.Get("d");
  const VertexId s = 0, t = v1.NumVertices() - 1;
  Distance before = 0;
  ASSERT_TRUE(h.Query(s, t, &before).ok());
  ASSERT_TRUE(h.Query(s, t, &before).ok());  // now cached
  ASSERT_GT(before, 1u);
  ASSERT_GT(cache->GetStats().hits, 0u);

  // v2: same path plus a unit shortcut edge 0—(n-1).
  EdgeList el = v1.ToEdgeList();
  el.Add(s, t, 1);
  Graph v2 = Graph::FromEdgeList(std::move(el));
  std::filesystem::remove_all(Path("d"));
  SaveDataset(v2, "d");

  // Old snapshot taken before the swap stays valid afterwards.
  std::shared_ptr<PartitionedIndex> old_snapshot = h.index();
  ASSERT_TRUE(catalog.Reload("d").ok());

  Distance after = 0;
  ASSERT_TRUE(h.Query(s, t, &after).ok());
  EXPECT_EQ(after, 1u) << "stale cached distance served across reload";
  Distance cached_after = 0;
  ASSERT_TRUE(h.Query(s, t, &cached_after).ok());
  EXPECT_EQ(cached_after, after);

  Distance old_d = 0;
  ASSERT_TRUE(old_snapshot->Query(s, t, &old_d).ok());
  EXPECT_EQ(old_d, before) << "pinned pre-reload snapshot must still answer";
  EXPECT_EQ(catalog.List()[0].reloads, 1u);
}

TEST_F(CatalogHostTest, ReloadWithoutDirectoryFails) {
  auto built = PartitionedIndex::Build(MakeTestGraph(Family::kPath, 8, true, 1));
  ASSERT_TRUE(built.ok());
  Catalog catalog;
  ASSERT_TRUE(catalog.AddIndex("mem", std::move(built).value()).ok());
  EXPECT_TRUE(catalog.Reload("mem").IsFailedPrecondition());
  EXPECT_TRUE(catalog.Reload("nope").IsNotFound());
}

// ---------------------------------------------------------------------------
// Protocol verbs + dispatcher modes
// ---------------------------------------------------------------------------

TEST(CatalogProtocol, ParsesCatalogVerbs) {
  Request r = ParseRequest("use road-usa.v2");
  ASSERT_EQ(r.kind, RequestKind::kUse);
  EXPECT_EQ(r.name, "road-usa.v2");
  r = ParseRequest("reload btc_2024");
  ASSERT_EQ(r.kind, RequestKind::kReload);
  EXPECT_EQ(r.name, "btc_2024");
  EXPECT_EQ(ParseRequest("datasets").kind, RequestKind::kDatasets);

  EXPECT_EQ(ParseRequest("use").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequest("use two words").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequest("use bad:name").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequest("reload").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequest("datasets all").kind, RequestKind::kInvalid);
}

TEST(CatalogProtocol, SingleIndexModeRejectsCatalogVerbs) {
  Graph g = MakeTestGraph(Family::kPath, 10, /*weighted=*/false, 1);
  auto built = ISLabelIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  RequestDispatcher dispatcher(&index);
  EXPECT_EQ(dispatcher.Execute(ParseRequest("use a")),
            "error: NotSupported: no catalog (single-dataset server)");
  EXPECT_EQ(dispatcher.Execute(ParseRequest("datasets")),
            "error: NotSupported: no catalog (single-dataset server)");
  EXPECT_EQ(dispatcher.Execute(ParseRequest("1 2")),
            server::FormatDistance(1));  // plain queries still served
}

TEST_F(CatalogHostTest, DispatcherRoutesPerSession) {
  const Graph ga = MakeTestGraph(Family::kPath, 6, /*weighted=*/false, 1);
  const Graph gb = MakeTestGraph(Family::kStar, 6, /*weighted=*/false, 1);
  SaveDataset(ga, "pa");
  SaveDataset(gb, "st");
  Catalog catalog;
  ASSERT_TRUE(catalog.Add("pa", Path("pa")).ok());
  ASSERT_TRUE(catalog.Add("st", Path("st")).ok());
  ASSERT_TRUE(catalog.WaitReady().ok());

  RequestDispatcher dispatcher(&catalog, "pa");
  RequestDispatcher::Session s1, s2;
  // Default dataset: the path graph (d(0,5) = 5).
  EXPECT_EQ(dispatcher.Execute(ParseRequest("0 5"), &s1), "5");
  // s2 switches to the star (d(1,5) = 2 via the hub), s1 is unaffected.
  EXPECT_EQ(dispatcher.Execute(ParseRequest("use st"), &s2), "ok: using st");
  EXPECT_EQ(dispatcher.Execute(ParseRequest("1 5"), &s2), "2");
  EXPECT_EQ(dispatcher.Execute(ParseRequest("1 5"), &s1), "4");
  EXPECT_EQ(dispatcher.Execute(ParseRequest("use nope"), &s2),
            "error: NotFound: unknown dataset nope");

  const std::string datasets = dispatcher.Execute(ParseRequest("datasets"), &s1);
  EXPECT_EQ(datasets.rfind("datasets:", 0), 0u) << datasets;
  EXPECT_NE(datasets.find("pa:ready:1:6"), std::string::npos) << datasets;
  EXPECT_NE(datasets.find("st:ready:1:6"), std::string::npos) << datasets;
}

// ---------------------------------------------------------------------------
// Loopback TCP: concurrent clients querying across live reloads
// ---------------------------------------------------------------------------

/// Minimal blocking line client (mirrors test_server.cc).
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    EXPECT_TRUE(connected_);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  std::string ReadLine() {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "<eof>";
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

class CatalogServerTest : public CatalogHostTest {
 protected:
  void SetUp() override {
    CatalogHostTest::SetUp();
    graph_a_ = DisconnectedGraph(180, 81);
    graph_b_ = MakeTestGraph(Family::kGrid, 120, /*weighted=*/true, 83);
    SaveDataset(graph_a_, "a");
    SaveDataset(graph_b_, "b");
    ASSERT_TRUE(catalog_.Add("a", Path("a")).ok());
    ASSERT_TRUE(catalog_.Add("b", Path("b")).ok());
    ASSERT_TRUE(catalog_.WaitReady().ok());
    cache_a_ = std::make_shared<QueryCache>();
    cache_b_ = std::make_shared<QueryCache>();
    ASSERT_TRUE(catalog_.SetDistanceCache("a", cache_a_).ok());
    ASSERT_TRUE(catalog_.SetDistanceCache("b", cache_b_).ok());

    TcpServerOptions opts;
    opts.port = 0;
    opts.num_workers = 4;
    server_ = std::make_unique<TcpServer>(&catalog_, "a", opts);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
      server_->Wait();
    }
    CatalogHostTest::TearDown();
  }

  /// Single-threaded ground truth straight off fresh per-part engines
  /// (an independently loaded copy of the saved dataset).
  std::vector<std::string> ExpectedLines(
      const Graph& g, const std::string& name,
      const std::vector<std::pair<VertexId, VertexId>>& pairs) {
    auto fresh = PartitionedIndex::Load(Path(name));
    EXPECT_TRUE(fresh.ok());
    std::vector<std::string> lines;
    lines.reserve(pairs.size());
    for (const auto& [s, t] : pairs) {
      Distance d = 0;
      EXPECT_TRUE(fresh->Query(s, t, &d).ok());
      lines.push_back(server::FormatDistance(d));
    }
    (void)g;
    return lines;
  }

  Graph graph_a_;
  Graph graph_b_;
  Catalog catalog_;
  std::shared_ptr<QueryCache> cache_a_;
  std::shared_ptr<QueryCache> cache_b_;
  std::unique_ptr<TcpServer> server_;
};

TEST_F(CatalogServerTest, ClientsQueryAcrossConcurrentReloads) {
  // 4 clients alternate between the two datasets with `use`, while a
  // fifth connection hammers `reload` on both. Reloading from an
  // unchanged directory must leave every answer bit-identical, mid-swap
  // or not — that is the acceptance bar for hot swap under load.
  constexpr int kClients = 4;
  constexpr int kRounds = 6;
  constexpr std::size_t kPairsPerRound = 25;

  struct Round {
    std::string use_line;
    std::string burst;
    std::vector<std::string> expect;
  };
  std::vector<std::vector<Round>> plans(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRounds; ++r) {
      const bool on_a = (c + r) % 2 == 0;
      const Graph& g = on_a ? graph_a_ : graph_b_;
      Round round;
      round.use_line = on_a ? "use a\n" : "use b\n";
      const auto pairs =
          SampleQueryPairs(g, kPairsPerRound, 100 + 10 * c + r);
      for (const auto& [s, t] : pairs) {
        round.burst += std::to_string(s) + " " + std::to_string(t) + "\n";
      }
      round.expect = ExpectedLines(g, on_a ? "a" : "b", pairs);
      plans[c].push_back(std::move(round));
    }
  }

  std::atomic<bool> stop_reloading{false};
  std::thread reloader([&] {
    TestClient client(server_->port());
    if (!client.connected()) return;
    int flips = 0;
    while (!stop_reloading.load(std::memory_order_acquire)) {
      const std::string name = (flips++ % 2 == 0) ? "a" : "b";
      client.Send("reload " + name + "\n");
      if (client.ReadLine() != "ok: reloaded " + name) return;
    }
    client.Send("quit\n");
  });

  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(server_->port());
      if (!client.connected()) {
        failures[c] = "connect failed";
        return;
      }
      for (const Round& round : plans[c]) {
        client.Send(round.use_line + round.burst);  // pipelined
        std::string got = client.ReadLine();
        if (got.rfind("ok: using ", 0) != 0) {
          failures[c] = "bad use response: " + got;
          return;
        }
        for (std::size_t i = 0; i < round.expect.size(); ++i) {
          got = client.ReadLine();
          if (got != round.expect[i]) {
            failures[c] = "mismatch: got '" + got + "' want '" +
                          round.expect[i] + "'";
            return;
          }
        }
      }
      client.Send("quit\n");
    });
  }
  for (std::thread& t : clients) t.join();
  stop_reloading.store(true, std::memory_order_release);
  reloader.join();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }
  const auto infos = catalog_.List();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_GT(infos[0].requests + infos[1].requests, 0u);
  EXPECT_GT(infos[0].reloads + infos[1].reloads, 0u);
}

TEST_F(CatalogServerTest, StatsCarryPerDatasetCounters) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("1 2\nuse b\n1 2\nstats\ndatasets\nquit\n");
  (void)client.ReadLine();  // d_a(1,2)
  ASSERT_EQ(client.ReadLine(), "ok: using b");
  (void)client.ReadLine();  // d_b(1,2)
  const std::string stats = client.ReadLine();
  EXPECT_EQ(stats.rfind("stats:", 0), 0u) << stats;
  EXPECT_NE(stats.find("a.requests=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("b.requests=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("a.state=ready"), std::string::npos) << stats;
  const std::string datasets = client.ReadLine();
  EXPECT_EQ(datasets.rfind("datasets:", 0), 0u) << datasets;
  EXPECT_NE(datasets.find("a:ready:"), std::string::npos) << datasets;
  EXPECT_NE(datasets.find("b:ready:"), std::string::npos) << datasets;
  EXPECT_EQ(client.ReadLine(), "<eof>");
}

TEST_F(CatalogServerTest, CrossComponentAnswersUnreachableOverTheWire) {
  // graph_a_ is Family::kDisconnected: vertex 0 and vertex n/2+1 live in
  // different halves.
  auto fresh = PartitionedIndex::Load(Path("a"));
  ASSERT_TRUE(fresh.ok());
  VertexId s = 0, t = 0;
  bool found = false;
  for (VertexId v = 1; v < graph_a_.NumVertices() && !found; ++v) {
    if (fresh->ComponentOf(v) != fresh->ComponentOf(0)) {
      t = v;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send(std::to_string(s) + " " + std::to_string(t) + "\nquit\n");
  EXPECT_EQ(client.ReadLine(), "unreachable");
}

TEST_F(CatalogServerTest, MetricsVerbExposesCatalogFamilies) {
  // Catalog mode needs no explicit wiring: the server scrapes the
  // catalog's own registry (a catalog always has one).
  TestClient client(server_->port());
  client.Send("1 2\nuse b\n0 1\nreload a\nmetrics\n");
  (void)client.ReadLine();  // distance on a
  ASSERT_EQ(client.ReadLine(), "ok: using b");
  (void)client.ReadLine();  // distance on b
  ASSERT_EQ(client.ReadLine(), "ok: reloaded a");

  std::vector<std::string> lines;
  for (;;) {
    const std::string line = client.ReadLine();
    ASSERT_NE(line, "<eof>");
    lines.push_back(line);
    if (line == "# EOF") break;
  }
  auto value = [&lines](const std::string& series) -> std::uint64_t {
    for (const std::string& line : lines) {
      if (line.rfind(series + " ", 0) == 0) {
        return std::strtoull(line.c_str() + series.size() + 1, nullptr, 10);
      }
    }
    ADD_FAILURE() << "series not found: " << series;
    return 0;
  };
  // Per-dataset routing is visible in the labels.
  EXPECT_EQ(value("islabel_dataset_requests_total{dataset=\"a\"}"), 1u);
  EXPECT_EQ(value("islabel_dataset_requests_total{dataset=\"b\"}"), 1u);
  EXPECT_EQ(value("islabel_dataset_reloads_total{dataset=\"a\"}"), 1u);
  EXPECT_EQ(value("islabel_catalog_reload_seconds_count"), 1u);
  // Server-level families live in the same registry: use + reload +
  // 2 distances + the metrics scrape itself.
  EXPECT_EQ(value("islabel_server_requests_total"), 5u);
  // The exposition spans the required subsystem breadth.
  std::set<std::string> families;
  for (const std::string& line : lines) {
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream t(line.substr(7));
      std::string name;
      t >> name;
      families.insert(name);
    }
  }
  EXPECT_GE(families.size(), 12u);
  for (const char* want :
       {"islabel_server_requests_total", "islabel_server_connections_open",
        "islabel_dataset_requests_total", "islabel_catalog_reload_seconds",
        "islabel_pool_lease_wait_seconds", "islabel_query_stage_seconds"}) {
    EXPECT_NE(families.count(want), 0u) << want;
  }
}

}  // namespace
}  // namespace islabel
