// Tests for the telemetry layer (src/obs/): registry identity and
// kind-mismatch behavior, histogram bucket math and quantile
// interpolation, the enabled A/B switch, Prometheus exposition
// validity, a multi-threaded histogram hammer (the TSan target for the
// record path), and the QueryTrace / slow-query machinery on a
// ManualClock.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace islabel {
namespace obs {
namespace {

// ---------- Registry identity ----------

TEST(MetricRegistry, GetOrCreateReturnsSamePointer) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("islabel_test_total", "help");
  Counter* b = reg.GetCounter("islabel_test_total", "help");
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(b->Value(), 3u);

  Gauge* g1 = reg.GetGauge("islabel_test_level", "help");
  Gauge* g2 = reg.GetGauge("islabel_test_level", "help");
  EXPECT_EQ(g1, g2);

  Histogram* h1 = reg.GetHistogram("islabel_test_seconds", "help");
  Histogram* h2 = reg.GetHistogram("islabel_test_seconds", "help");
  EXPECT_EQ(h1, h2);
}

TEST(MetricRegistry, DistinctLabelsAreDistinctSeries) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("islabel_test_total", "h", {{"verb", "a"}});
  Counter* b = reg.GetCounter("islabel_test_total", "h", {{"verb", "b"}});
  EXPECT_NE(a, b);
  a->Inc();
  EXPECT_EQ(a->Value(), 1u);
  EXPECT_EQ(b->Value(), 0u);
  // Same labels again: same series.
  EXPECT_EQ(a, reg.GetCounter("islabel_test_total", "h", {{"verb", "a"}}));
}

TEST(MetricRegistry, KindMismatchYieldsScratchNotCrash) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("islabel_test_total", "h");
  Gauge* g = reg.GetGauge("islabel_test_total", "h");  // wrong kind
  Histogram* h = reg.GetHistogram("islabel_test_total", "h");  // wrong kind
  // Recording into the scratch instruments works...
  g->Set(7);
  h->Record(5);
  c->Inc();
  // ...but the family keeps its original kind and value, and nothing
  // bogus is rendered.
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE islabel_test_total counter"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE islabel_test_total gauge"), std::string::npos);
  EXPECT_EQ(reg.FamilyNames().size(), 1u);
}

TEST(MetricRegistry, EnabledFlagTurnsRecordingIntoNoop) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("islabel_test_total", "h");
  Gauge* g = reg.GetGauge("islabel_test_level", "h");
  Histogram* h = reg.GetHistogram("islabel_test_seconds", "h");
  c->Inc();
  g->Set(5);
  h->Record(10);

  reg.set_enabled(false);
  c->Inc(100);
  g->Set(999);
  g->Add(999);
  h->Record(10);
  EXPECT_EQ(c->Value(), 1u);
  EXPECT_EQ(g->Value(), 5);
  EXPECT_EQ(h->Count(), 1u);

  reg.set_enabled(true);
  c->Inc();
  EXPECT_EQ(c->Value(), 2u);
}

TEST(MetricRegistry, StandaloneInstrumentsAlwaysRecord) {
  // Instruments outside any registry (the "own_" embedded default of
  // the one-counter-system pattern) have no enabled flag: always live.
  Counter c;
  c.Inc(4);
  EXPECT_EQ(c.Value(), 4u);
  Gauge g;
  g.Add(2);
  g.Add(-5);
  EXPECT_EQ(g.Value(), -3);
}

TEST(MetricRegistry, CallbackGaugeReRegisterReplaces) {
  MetricRegistry reg;
  int live = 42;
  reg.RegisterCallbackGauge("islabel_test_cb", "h", {},
                            [&live] { return static_cast<double>(live); });
  std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("islabel_test_cb 42"), std::string::npos);
  // Freeze: replace the live closure with a value capture (the
  // ReplicaAgent::FreezeMetrics pattern).
  reg.RegisterCallbackGauge("islabel_test_cb", "h", {}, [] { return 7.0; });
  live = 0;
  text = reg.RenderPrometheus();
  EXPECT_NE(text.find("islabel_test_cb 7"), std::string::npos);
  EXPECT_EQ(reg.FamilyNames().size(), 1u);
}

// ---------- Histogram math ----------

TEST(Histogram, BucketIndexEdges) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 0);
  EXPECT_EQ(Histogram::BucketIndex(2), 1);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 2);
  EXPECT_EQ(Histogram::BucketIndex(5), 3);
  // Every exact power of two lands in its own bucket (upper bound is
  // inclusive), one past it spills into the next.
  for (int i = 0; i < Histogram::kNumFiniteBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperMicros(i)), i);
  }
  const std::uint64_t top =
      Histogram::BucketUpperMicros(Histogram::kNumFiniteBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(top + 1), Histogram::kNumFiniteBuckets);
  EXPECT_EQ(Histogram::BucketIndex(~0ull), Histogram::kNumFiniteBuckets);
}

TEST(Histogram, RecordAccumulatesCountSumBuckets) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  h.Record(1);
  h.Record(1000);  // bucket 10: (512, 1024]
  h.Record(1000);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.SumMicros(), 2001u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(10), 2u);
}

TEST(Histogram, QuantileInterpolatesInsideBucket) {
  Histogram h;
  EXPECT_EQ(h.QuantileMicros(0.5), 0.0);  // empty
  for (int i = 0; i < 100; ++i) h.Record(1000);  // all in (512, 1024]
  const double p50 = h.QuantileMicros(0.5);
  const double p99 = h.QuantileMicros(0.99);
  EXPECT_GT(p50, 512.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_GE(p99, p50);  // quantiles are monotone in q
  EXPECT_LE(p99, 1024.0);
}

TEST(Histogram, OverflowQuantileReportsTopFiniteBound) {
  Histogram h;
  h.Record(~0ull);  // way past the top finite bucket
  const double top = static_cast<double>(
      Histogram::BucketUpperMicros(Histogram::kNumFiniteBuckets - 1));
  EXPECT_EQ(h.QuantileMicros(0.5), top);
  EXPECT_EQ(h.QuantileMicros(1.0), top);
}

// ---------- Prometheus exposition validity ----------

// Minimal strict parser for the subset of the text format the registry
// emits: every line is "# HELP name text", "# TYPE name kind",
// "name[{labels}] value", or the final "# EOF". Samples must follow
// their TYPE line; histogram buckets must be cumulative and end at
// +Inf == count.
void CheckPrometheusText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::set<std::string> typed;
  std::string last;
  bool saw_eof = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(saw_eof) << "content after # EOF: " << line;
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    last = line;
    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream t(line.substr(7));
      std::string name, kind;
      t >> name >> kind;
      ASSERT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      typed.insert(name);
      continue;
    }
    // Sample line: name[{...}] SP value.
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    std::string series = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    ASSERT_FALSE(value.empty()) << line;
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparsable value in: " << line;
    std::string name = series.substr(0, series.find('{'));
    // Histogram sample names carry a suffix; strip it to find the family.
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (typed.count(name) == 0 && name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        const std::string stripped = name.substr(0, name.size() - s.size());
        if (typed.count(stripped) != 0) name = stripped;
      }
    }
    EXPECT_NE(typed.count(name), 0u)
        << "sample before its # TYPE line: " << line;
  }
  EXPECT_TRUE(saw_eof);
  EXPECT_EQ(last, "# EOF");
}

TEST(MetricRegistry, RenderPrometheusIsValidAndEofTerminated) {
  MetricRegistry reg;
  reg.GetCounter("islabel_test_total", "Total things.")->Inc(5);
  reg.GetCounter("islabel_test_by_verb_total", "h", {{"verb", "distance"}})
      ->Inc();
  reg.GetGauge("islabel_test_level", "A level.")->Set(-3);
  Histogram* h = reg.GetHistogram("islabel_test_seconds", "Latency.",
                                  {{"verb", "path"}});
  h->Record(1);
  h->Record(100);
  h->Record(100000);
  reg.RegisterCallbackGauge("islabel_test_cb", "Sampled at scrape.", {},
                            [] { return 1.5; });
  const std::string text = reg.RenderPrometheus();
  CheckPrometheusText(text);

  // Histogram invariants: cumulative buckets, +Inf equals _count.
  EXPECT_NE(
      text.find("islabel_test_seconds_bucket{verb=\"path\",le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(text.find("islabel_test_seconds_count{verb=\"path\"} 3"),
            std::string::npos);
  // Help text with a newline is escaped, not emitted raw.
  MetricRegistry reg2;
  reg2.GetCounter("islabel_test_total", "line1\nline2")->Inc();
  CheckPrometheusText(reg2.RenderPrometheus());
}

TEST(MetricRegistry, LabelValuesAreEscaped) {
  MetricRegistry reg;
  reg.GetCounter("islabel_test_total", "h", {{"p", "a\"b\\c\nd"}})->Inc();
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("p=\"a\\\"b\\\\c\\nd\""), std::string::npos);
  CheckPrometheusText(text);
}

// ---------- Concurrency: the TSan target ----------

TEST(Histogram, ConcurrentRecordConservesTotals) {
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("islabel_test_seconds", "h");
  Counter* c = reg.GetCounter("islabel_test_total", "h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, c, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Deterministic spread across buckets, different per thread.
        h->Record(static_cast<std::uint64_t>((i * 7 + t) % 5000));
        c->Inc();
      }
    });
  }
  // Scrapes race the writers; rendering must stay well-formed.
  for (int i = 0; i < 10; ++i) CheckPrometheusText(reg.RenderPrometheus());
  for (auto& th : threads) th.join();

  const std::uint64_t expected = std::uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(c->Value(), expected);
  EXPECT_EQ(h->Count(), expected);
  std::uint64_t bucket_sum = 0;
  for (int i = 0; i <= Histogram::kNumFiniteBuckets; ++i) {
    bucket_sum += h->BucketCount(i);
  }
  EXPECT_EQ(bucket_sum, expected);  // no lost or double-counted events
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) expected_sum += (i * 7 + t) % 5000;
  }
  EXPECT_EQ(h->SumMicros(), expected_sum);
}

TEST(MetricRegistry, ConcurrentGetOrCreateIsSafe) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      for (int i = 0; i < 500; ++i) {
        Counter* c = reg.GetCounter("islabel_test_total", "h");
        c->Inc();
        seen[static_cast<std::size_t>(t)] = c;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(seen[0]->Value(), 8u * 500u);
}

// ---------- QueryTrace / slow-query ----------

TEST(QueryTrace, StageTimerAttributesToCurrentTrace) {
  ManualClock clock;
  QueryTrace trace(&clock);
  TraceScope scope(&trace);
  ASSERT_EQ(CurrentTrace(), &trace);
  {
    StageTimer timer(Stage::kKernel);
    clock.AdvanceMicros(250);
  }
  {
    StageTimer timer(Stage::kEncode);
    clock.AdvanceMicros(30);
  }
  {
    StageTimer timer(Stage::kKernel);  // stages accumulate
    clock.AdvanceMicros(50);
  }
  EXPECT_EQ(trace.StageMicros(Stage::kKernel), 300u);
  EXPECT_EQ(trace.StageMicros(Stage::kEncode), 30u);
  EXPECT_EQ(trace.StageMicros(Stage::kParse), 0u);
}

TEST(QueryTrace, NoTraceInstalledMeansNoEffect) {
  ASSERT_EQ(CurrentTrace(), nullptr);
  StageTimer timer(Stage::kKernel);  // must not crash or read a clock
}

TEST(QueryTrace, TraceScopeRestoresPrevious) {
  ManualClock clock;
  QueryTrace outer(&clock);
  TraceScope outer_scope(&outer);
  {
    QueryTrace inner(&clock);
    TraceScope inner_scope(&inner);
    EXPECT_EQ(CurrentTrace(), &inner);
  }
  EXPECT_EQ(CurrentTrace(), &outer);
}

TEST(QueryTrace, KernelDepthGuardOnlyOutermostCounts) {
  ManualClock clock;
  QueryTrace trace(&clock);
  EXPECT_TRUE(trace.BeginKernel());
  EXPECT_FALSE(trace.BeginKernel());  // nested frame must not attribute
  trace.EndKernel();
  trace.EndKernel();
  EXPECT_TRUE(trace.BeginKernel());  // guard resets once fully unwound
  trace.EndKernel();
}

TEST(QueryTrace, StageNamesArePinned) {
  EXPECT_STREQ(StageName(Stage::kParse), "parse");
  EXPECT_STREQ(StageName(Stage::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(StageName(Stage::kPoolWait), "pool_wait");
  EXPECT_STREQ(StageName(Stage::kKernel), "kernel");
  EXPECT_STREQ(StageName(Stage::kEncode), "encode");
}

TEST(QueryTrace, SlowQueryLineFormatIsPinned) {
  ManualClock clock;
  QueryTrace trace(&clock);
  trace.Add(Stage::kParse, 10);
  trace.Add(Stage::kCacheLookup, 2);
  trace.Add(Stage::kPoolWait, 400);
  trace.Add(Stage::kKernel, 11800);
  trace.Add(Stage::kEncode, 3);
  EXPECT_EQ(FormatSlowQueryLine("distance", 12345, trace),
            "slow-query verb=distance total_us=12345 parse_us=10 cache_us=2 "
            "pool_wait_us=400 kernel_us=11800 encode_us=3");
}

}  // namespace
}  // namespace obs
}  // namespace islabel
