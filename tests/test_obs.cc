// Tests for the telemetry layer (src/obs/): registry identity and
// kind-mismatch behavior, histogram bucket math and quantile
// interpolation, the enabled A/B switch, Prometheus exposition
// validity, a multi-threaded histogram hammer (the TSan target for the
// record path), the QueryTrace / slow-query machinery on a
// ManualClock, the flight recorder (ring exactness, enable flag, the
// 8-thread record hammer with concurrent tracez scrapes), and the
// structured event log (JSON shape, levels, rate limiting, tid
// auto-attach).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs_test_util.h"
#include "util/clock.h"
#include "util/mutex.h"

namespace islabel {
namespace obs {
namespace {

// ---------- Registry identity ----------

TEST(MetricRegistry, GetOrCreateReturnsSamePointer) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("islabel_test_total", "help");
  Counter* b = reg.GetCounter("islabel_test_total", "help");
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(b->Value(), 3u);

  Gauge* g1 = reg.GetGauge("islabel_test_level", "help");
  Gauge* g2 = reg.GetGauge("islabel_test_level", "help");
  EXPECT_EQ(g1, g2);

  Histogram* h1 = reg.GetHistogram("islabel_test_seconds", "help");
  Histogram* h2 = reg.GetHistogram("islabel_test_seconds", "help");
  EXPECT_EQ(h1, h2);
}

TEST(MetricRegistry, DistinctLabelsAreDistinctSeries) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("islabel_test_total", "h", {{"verb", "a"}});
  Counter* b = reg.GetCounter("islabel_test_total", "h", {{"verb", "b"}});
  EXPECT_NE(a, b);
  a->Inc();
  EXPECT_EQ(a->Value(), 1u);
  EXPECT_EQ(b->Value(), 0u);
  // Same labels again: same series.
  EXPECT_EQ(a, reg.GetCounter("islabel_test_total", "h", {{"verb", "a"}}));
}

TEST(MetricRegistry, KindMismatchYieldsScratchNotCrash) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("islabel_test_total", "h");
  Gauge* g = reg.GetGauge("islabel_test_total", "h");  // wrong kind
  Histogram* h = reg.GetHistogram("islabel_test_total", "h");  // wrong kind
  // Recording into the scratch instruments works...
  g->Set(7);
  h->Record(5);
  c->Inc();
  // ...but the family keeps its original kind and value, and nothing
  // bogus is rendered.
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE islabel_test_total counter"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE islabel_test_total gauge"), std::string::npos);
  EXPECT_EQ(reg.FamilyNames().size(), 1u);
}

TEST(MetricRegistry, EnabledFlagTurnsRecordingIntoNoop) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("islabel_test_total", "h");
  Gauge* g = reg.GetGauge("islabel_test_level", "h");
  Histogram* h = reg.GetHistogram("islabel_test_seconds", "h");
  c->Inc();
  g->Set(5);
  h->Record(10);

  reg.set_enabled(false);
  c->Inc(100);
  g->Set(999);
  g->Add(999);
  h->Record(10);
  EXPECT_EQ(c->Value(), 1u);
  EXPECT_EQ(g->Value(), 5);
  EXPECT_EQ(h->Count(), 1u);

  reg.set_enabled(true);
  c->Inc();
  EXPECT_EQ(c->Value(), 2u);
}

TEST(MetricRegistry, StandaloneInstrumentsAlwaysRecord) {
  // Instruments outside any registry (the "own_" embedded default of
  // the one-counter-system pattern) have no enabled flag: always live.
  Counter c;
  c.Inc(4);
  EXPECT_EQ(c.Value(), 4u);
  Gauge g;
  g.Add(2);
  g.Add(-5);
  EXPECT_EQ(g.Value(), -3);
}

TEST(MetricRegistry, CallbackGaugeReRegisterReplaces) {
  MetricRegistry reg;
  int live = 42;
  reg.RegisterCallbackGauge("islabel_test_cb", "h", {},
                            [&live] { return static_cast<double>(live); });
  std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("islabel_test_cb 42"), std::string::npos);
  // Freeze: replace the live closure with a value capture (the
  // ReplicaAgent::FreezeMetrics pattern).
  reg.RegisterCallbackGauge("islabel_test_cb", "h", {}, [] { return 7.0; });
  live = 0;
  text = reg.RenderPrometheus();
  EXPECT_NE(text.find("islabel_test_cb 7"), std::string::npos);
  EXPECT_EQ(reg.FamilyNames().size(), 1u);
}

// ---------- Histogram math ----------

TEST(Histogram, BucketIndexEdges) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 0);
  EXPECT_EQ(Histogram::BucketIndex(2), 1);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 2);
  EXPECT_EQ(Histogram::BucketIndex(5), 3);
  // Every exact power of two lands in its own bucket (upper bound is
  // inclusive), one past it spills into the next.
  for (int i = 0; i < Histogram::kNumFiniteBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperMicros(i)), i);
  }
  const std::uint64_t top =
      Histogram::BucketUpperMicros(Histogram::kNumFiniteBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(top + 1), Histogram::kNumFiniteBuckets);
  EXPECT_EQ(Histogram::BucketIndex(~0ull), Histogram::kNumFiniteBuckets);
}

TEST(Histogram, RecordAccumulatesCountSumBuckets) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  h.Record(1);
  h.Record(1000);  // bucket 10: (512, 1024]
  h.Record(1000);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.SumMicros(), 2001u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(10), 2u);
}

TEST(Histogram, QuantileInterpolatesInsideBucket) {
  Histogram h;
  EXPECT_EQ(h.QuantileMicros(0.5), 0.0);  // empty
  for (int i = 0; i < 100; ++i) h.Record(1000);  // all in (512, 1024]
  const double p50 = h.QuantileMicros(0.5);
  const double p99 = h.QuantileMicros(0.99);
  EXPECT_GT(p50, 512.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_GE(p99, p50);  // quantiles are monotone in q
  EXPECT_LE(p99, 1024.0);
}

TEST(Histogram, OverflowQuantileReportsTopFiniteBound) {
  Histogram h;
  h.Record(~0ull);  // way past the top finite bucket
  const double top = static_cast<double>(
      Histogram::BucketUpperMicros(Histogram::kNumFiniteBuckets - 1));
  EXPECT_EQ(h.QuantileMicros(0.5), top);
  EXPECT_EQ(h.QuantileMicros(1.0), top);
}

// ---------- Prometheus exposition validity ----------

// Minimal strict parser for the subset of the text format the registry
// emits: every line is "# HELP name text", "# TYPE name kind",
// "name[{labels}] value", or the final "# EOF". Samples must follow
// their TYPE line; histogram buckets must be cumulative and end at
// +Inf == count.
void CheckPrometheusText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::set<std::string> typed;
  std::string last;
  bool saw_eof = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(saw_eof) << "content after # EOF: " << line;
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    last = line;
    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream t(line.substr(7));
      std::string name, kind;
      t >> name >> kind;
      ASSERT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      typed.insert(name);
      continue;
    }
    // Sample line: name[{...}] SP value.
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    std::string series = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    ASSERT_FALSE(value.empty()) << line;
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparsable value in: " << line;
    std::string name = series.substr(0, series.find('{'));
    // Histogram sample names carry a suffix; strip it to find the family.
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (typed.count(name) == 0 && name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        const std::string stripped = name.substr(0, name.size() - s.size());
        if (typed.count(stripped) != 0) name = stripped;
      }
    }
    EXPECT_NE(typed.count(name), 0u)
        << "sample before its # TYPE line: " << line;
  }
  EXPECT_TRUE(saw_eof);
  EXPECT_EQ(last, "# EOF");
}

TEST(MetricRegistry, RenderPrometheusIsValidAndEofTerminated) {
  MetricRegistry reg;
  reg.GetCounter("islabel_test_total", "Total things.")->Inc(5);
  reg.GetCounter("islabel_test_by_verb_total", "h", {{"verb", "distance"}})
      ->Inc();
  reg.GetGauge("islabel_test_level", "A level.")->Set(-3);
  Histogram* h = reg.GetHistogram("islabel_test_seconds", "Latency.",
                                  {{"verb", "path"}});
  h->Record(1);
  h->Record(100);
  h->Record(100000);
  reg.RegisterCallbackGauge("islabel_test_cb", "Sampled at scrape.", {},
                            [] { return 1.5; });
  const std::string text = reg.RenderPrometheus();
  CheckPrometheusText(text);

  // Histogram invariants: cumulative buckets, +Inf equals _count.
  EXPECT_NE(
      text.find("islabel_test_seconds_bucket{verb=\"path\",le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(text.find("islabel_test_seconds_count{verb=\"path\"} 3"),
            std::string::npos);
  // Help text with a newline is escaped, not emitted raw.
  MetricRegistry reg2;
  reg2.GetCounter("islabel_test_total", "line1\nline2")->Inc();
  CheckPrometheusText(reg2.RenderPrometheus());
}

TEST(MetricRegistry, LabelValuesAreEscaped) {
  MetricRegistry reg;
  reg.GetCounter("islabel_test_total", "h", {{"p", "a\"b\\c\nd"}})->Inc();
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("p=\"a\\\"b\\\\c\\nd\""), std::string::npos);
  CheckPrometheusText(text);
}

// ---------- Concurrency: the TSan target ----------

TEST(Histogram, ConcurrentRecordConservesTotals) {
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("islabel_test_seconds", "h");
  Counter* c = reg.GetCounter("islabel_test_total", "h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, c, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Deterministic spread across buckets, different per thread.
        h->Record(static_cast<std::uint64_t>((i * 7 + t) % 5000));
        c->Inc();
      }
    });
  }
  // Scrapes race the writers; rendering must stay well-formed.
  for (int i = 0; i < 10; ++i) CheckPrometheusText(reg.RenderPrometheus());
  for (auto& th : threads) th.join();

  const std::uint64_t expected = std::uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(c->Value(), expected);
  EXPECT_EQ(h->Count(), expected);
  std::uint64_t bucket_sum = 0;
  for (int i = 0; i <= Histogram::kNumFiniteBuckets; ++i) {
    bucket_sum += h->BucketCount(i);
  }
  EXPECT_EQ(bucket_sum, expected);  // no lost or double-counted events
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) expected_sum += (i * 7 + t) % 5000;
  }
  EXPECT_EQ(h->SumMicros(), expected_sum);
}

TEST(MetricRegistry, ConcurrentGetOrCreateIsSafe) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      for (int i = 0; i < 500; ++i) {
        Counter* c = reg.GetCounter("islabel_test_total", "h");
        c->Inc();
        seen[static_cast<std::size_t>(t)] = c;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(seen[0]->Value(), 8u * 500u);
}

// ---------- QueryTrace / slow-query ----------

TEST(QueryTrace, StageTimerAttributesToCurrentTrace) {
  ManualClock clock;
  QueryTrace trace(&clock);
  TraceScope scope(&trace);
  ASSERT_EQ(CurrentTrace(), &trace);
  {
    StageTimer timer(Stage::kKernel);
    clock.AdvanceMicros(250);
  }
  {
    StageTimer timer(Stage::kEncode);
    clock.AdvanceMicros(30);
  }
  {
    StageTimer timer(Stage::kKernel);  // stages accumulate
    clock.AdvanceMicros(50);
  }
  EXPECT_EQ(trace.StageMicros(Stage::kKernel), 300u);
  EXPECT_EQ(trace.StageMicros(Stage::kEncode), 30u);
  EXPECT_EQ(trace.StageMicros(Stage::kParse), 0u);
}

TEST(QueryTrace, NoTraceInstalledMeansNoEffect) {
  ASSERT_EQ(CurrentTrace(), nullptr);
  StageTimer timer(Stage::kKernel);  // must not crash or read a clock
}

TEST(QueryTrace, TraceScopeRestoresPrevious) {
  ManualClock clock;
  QueryTrace outer(&clock);
  TraceScope outer_scope(&outer);
  {
    QueryTrace inner(&clock);
    TraceScope inner_scope(&inner);
    EXPECT_EQ(CurrentTrace(), &inner);
  }
  EXPECT_EQ(CurrentTrace(), &outer);
}

TEST(QueryTrace, KernelDepthGuardOnlyOutermostCounts) {
  ManualClock clock;
  QueryTrace trace(&clock);
  EXPECT_TRUE(trace.BeginKernel());
  EXPECT_FALSE(trace.BeginKernel());  // nested frame must not attribute
  trace.EndKernel();
  trace.EndKernel();
  EXPECT_TRUE(trace.BeginKernel());  // guard resets once fully unwound
  trace.EndKernel();
}

TEST(QueryTrace, StageNamesArePinned) {
  EXPECT_STREQ(StageName(Stage::kParse), "parse");
  EXPECT_STREQ(StageName(Stage::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(StageName(Stage::kPoolWait), "pool_wait");
  EXPECT_STREQ(StageName(Stage::kKernel), "kernel");
  EXPECT_STREQ(StageName(Stage::kEncode), "encode");
}

TEST(QueryTrace, SlowQueryLineFormatIsPinned) {
  ManualClock clock;
  QueryTrace trace(&clock);
  trace.Add(Stage::kParse, 10);
  trace.Add(Stage::kCacheLookup, 2);
  trace.Add(Stage::kPoolWait, 400);
  trace.Add(Stage::kKernel, 11800);
  trace.Add(Stage::kEncode, 3);
  EXPECT_EQ(FormatSlowQueryLine("distance", 12345, trace),
            "slow-query verb=distance total_us=12345 parse_us=10 cache_us=2 "
            "pool_wait_us=400 kernel_us=11800 encode_us=3");
}

// ---------- Trace id wire form ----------

TEST(TraceId, FormatIsLowercaseHexNoLeadingZeros) {
  EXPECT_EQ(FormatTraceId(0), "0");
  EXPECT_EQ(FormatTraceId(1), "1");
  EXPECT_EQ(FormatTraceId(0xdeadbeef), "deadbeef");
  EXPECT_EQ(FormatTraceId(~0ull), "ffffffffffffffff");
}

TEST(TraceId, ParseAcceptsOnlyNonzeroHex) {
  std::uint64_t id = 0;
  EXPECT_TRUE(ParseTraceId("1", &id));
  EXPECT_EQ(id, 1u);
  EXPECT_TRUE(ParseTraceId("DeadBeef", &id));  // either case on input
  EXPECT_EQ(id, 0xdeadbeefu);
  EXPECT_TRUE(ParseTraceId("ffffffffffffffff", &id));
  EXPECT_EQ(id, ~0ull);
  EXPECT_TRUE(ParseTraceId("0001", &id));  // leading zeros parse fine
  EXPECT_EQ(id, 1u);

  EXPECT_FALSE(ParseTraceId("", &id));
  EXPECT_FALSE(ParseTraceId("0", &id));     // zero is never a wire id
  EXPECT_FALSE(ParseTraceId("0000", &id));
  EXPECT_FALSE(ParseTraceId("xyz", &id));
  EXPECT_FALSE(ParseTraceId("12 34", &id));
  EXPECT_FALSE(ParseTraceId("0x12", &id));  // no prefix form
  EXPECT_FALSE(ParseTraceId("11112222333344445", &id));  // 17 digits
  // Round trip across the wire form.
  for (std::uint64_t v : {1ull, 0x10ull, 0xabcdef0123456789ull, ~0ull}) {
    std::uint64_t back = 0;
    ASSERT_TRUE(ParseTraceId(FormatTraceId(v), &back));
    EXPECT_EQ(back, v);
  }
}

// ---------- Flight recorder ----------

QueryTrace MakeTrace(const Clock* clock, std::uint64_t tid,
                     std::uint64_t kernel_us) {
  QueryTrace trace(clock);
  trace.set_trace_id(tid);
  trace.Add(Stage::kKernel, kernel_us);
  return trace;
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwoMinTwo) {
  ManualClock clock;
  FlightRecorderOptions opts;
  opts.clock = &clock;
  opts.capacity_per_thread = 0;
  EXPECT_EQ(FlightRecorder(opts).capacity_per_thread(), 2u);
  opts.capacity_per_thread = 3;
  EXPECT_EQ(FlightRecorder(opts).capacity_per_thread(), 4u);
  opts.capacity_per_thread = 8;
  EXPECT_EQ(FlightRecorder(opts).capacity_per_thread(), 8u);
}

TEST(FlightRecorder, WraparoundKeepsExactlyTheNewestCapacityRecords) {
  ManualClock clock;
  FlightRecorderOptions opts;
  opts.clock = &clock;
  opts.capacity_per_thread = 4;
  FlightRecorder rec(opts);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    QueryTrace trace = MakeTrace(&clock, /*tid=*/100 + i, /*kernel_us=*/i);
    rec.Record("distance", "ds", /*error=*/false, /*total_us=*/i, trace);
  }
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.num_rings(), 1u);  // single recording thread

  const std::vector<FlightRecord> all = rec.Snapshot(0);
  ASSERT_EQ(all.size(), 4u);  // exactly the ring capacity survives
  // Newest first: seqs 10, 9, 8, 7 — the wrap evicted 1..6.
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].seq, 10u - i);
    EXPECT_EQ(all[i].trace_id, 100u + all[i].seq);
    EXPECT_EQ(all[i].total_us, all[i].seq);
    EXPECT_EQ(all[i].stage_us[static_cast<int>(Stage::kKernel)], all[i].seq);
    EXPECT_STREQ(all[i].verb, "distance");
    EXPECT_EQ(all[i].dataset, "ds");
  }
  // max_records caps from the newest end.
  EXPECT_EQ(rec.Snapshot(2).size(), 2u);
  EXPECT_EQ(rec.Snapshot(2)[0].seq, 10u);
}

TEST(FlightRecorder, DisabledRecordIsANoop) {
  ManualClock clock;
  FlightRecorderOptions opts;
  opts.clock = &clock;
  FlightRecorder rec(opts);
  rec.set_enabled(false);
  QueryTrace trace = MakeTrace(&clock, 7, 5);
  rec.Record("distance", "", false, 5, trace);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.Snapshot(0).empty());

  rec.set_enabled(true);
  rec.Record("distance", "", false, 5, trace);
  EXPECT_EQ(rec.total_recorded(), 1u);
  EXPECT_EQ(rec.Snapshot(0).size(), 1u);
}

TEST(FlightRecorder, RenderTracezFormatIsPinned) {
  ManualClock clock;
  clock.SetMs(1000);
  FlightRecorderOptions opts;
  opts.clock = &clock;
  opts.capacity_per_thread = 8;
  FlightRecorder rec(opts);
  {
    QueryTrace trace(&clock);
    trace.set_trace_id(0xabc);
    trace.set_cache_hit(true);
    trace.Add(Stage::kParse, 1);
    trace.Add(Stage::kCacheLookup, 2);
    trace.Add(Stage::kPoolWait, 3);
    trace.Add(Stage::kKernel, 4);
    trace.Add(Stage::kEncode, 5);
    rec.Record("distance", "ds", /*error=*/false, /*total_us=*/15, trace);
  }
  {
    QueryTrace trace(&clock);  // untagged, error, no dataset
    rec.Record("path", "", /*error=*/true, /*total_us=*/99, trace);
  }
  clock.AdvanceMs(500);

  const std::string recent =
      rec.RenderTracez(FlightRecorder::TracezMode::kRecent, 0, 0);
  EXPECT_EQ(
      recent,
      "tracez: records=2 shown=2 capacity_per_thread=8 threads=1 enabled=1\n"
      "trace id=- seq=2 verb=path dataset=- status=error total_us=99"
      " parse_us=0 cache_us=0 pool_wait_us=0 kernel_us=0 encode_us=0"
      " cache_hit=0 age_ms=500\n"
      "trace id=abc seq=1 verb=distance dataset=ds status=ok total_us=15"
      " parse_us=1 cache_us=2 pool_wait_us=3 kernel_us=4 encode_us=5"
      " cache_hit=1 age_ms=500\n"
      "# EOF");

  // kErrors keeps only error responses; kById selects by trace id and
  // renders oldest first.
  const std::string errors =
      rec.RenderTracez(FlightRecorder::TracezMode::kErrors, 0, 0);
  EXPECT_NE(errors.find("shown=1"), std::string::npos);
  EXPECT_NE(errors.find("seq=2"), std::string::npos);
  EXPECT_EQ(errors.find("seq=1 "), std::string::npos);
  const std::string by_id =
      rec.RenderTracez(FlightRecorder::TracezMode::kById, 0xabc, 0);
  EXPECT_NE(by_id.find("id=abc seq=1"), std::string::npos);
  EXPECT_EQ(by_id.find("seq=2"), std::string::npos);
}

TEST(FlightRecorder, SlowModeSortsByTotalDescending) {
  ManualClock clock;
  FlightRecorderOptions opts;
  opts.clock = &clock;
  FlightRecorder rec(opts);
  for (std::uint64_t us : {5u, 500u, 50u}) {
    QueryTrace trace(&clock);
    rec.Record("distance", "", false, us, trace);
  }
  const std::string slow =
      rec.RenderTracez(FlightRecorder::TracezMode::kSlow, 0, 2);
  const std::size_t p500 = slow.find("total_us=500");
  const std::size_t p50 = slow.find("total_us=50 ");
  EXPECT_NE(p500, std::string::npos);
  EXPECT_NE(p50, std::string::npos);
  EXPECT_LT(p500, p50);
  EXPECT_EQ(slow.find("total_us=5 "), std::string::npos);  // limit=2 cut it
}

TEST(FlightRecorder, DatasetIsTruncatedOnRecord) {
  ManualClock clock;
  FlightRecorderOptions opts;
  opts.clock = &clock;
  FlightRecorder rec(opts);
  QueryTrace trace(&clock);
  rec.Record("distance", "a-very-long-dataset-name", false, 1, trace);
  const std::vector<FlightRecord> all = rec.Snapshot(0);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].dataset, "a-very-long-dat");  // 15 bytes
}

// The TSan target for the recorder: 8 writer threads hammering Record
// while scrapers run Snapshot and RenderTracez concurrently. Asserts
// that nothing tears (every surviving record is internally consistent)
// and that the global sequence conserves the total count.
TEST(FlightRecorder, ConcurrentRecordAndScrapeIsSafe) {
  ManualClock clock;
  FlightRecorderOptions opts;
  opts.clock = &clock;
  opts.capacity_per_thread = 64;  // small rings force constant wrapping
  FlightRecorder rec(opts);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, &clock, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t us = static_cast<std::uint64_t>(i % 1000);
        QueryTrace trace(&clock);
        // tid encodes (thread, i) so a torn slot would show as a
        // mismatched (trace_id, total_us) pair below.
        trace.set_trace_id((static_cast<std::uint64_t>(t + 1) << 32) | us);
        trace.Add(Stage::kKernel, us);
        rec.Record("distance", "hammer", (i % 7) == 0, us, trace);
      }
    });
  }
  std::thread scraper([&rec, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const FlightRecord& r : rec.Snapshot(0)) {
        // Seqlock contract: skipped-or-whole, never torn.
        ASSERT_EQ(r.trace_id & 0xffffffffu, r.total_us);
        ASSERT_EQ(r.stage_us[static_cast<int>(Stage::kKernel)], r.total_us);
        ASSERT_STREQ(r.verb, "distance");
        ASSERT_EQ(r.dataset, "hammer");
      }
      const std::string text =
          rec.RenderTracez(FlightRecorder::TracezMode::kRecent, 0, 16);
      ASSERT_EQ(text.rfind("\n# EOF"), text.size() - 6);
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(rec.total_recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(rec.num_rings(), static_cast<std::size_t>(kThreads));
  // Post-quiescence: every ring is full, snapshot returns threads*cap.
  EXPECT_EQ(rec.Snapshot(0).size(),
            static_cast<std::size_t>(kThreads) * rec.capacity_per_thread());
}

// ---------- Structured event log ----------

TEST(EventLog, JsonLineShapeIsPinned) {
  ManualClock clock;
  clock.SetMs(42);
  Mutex mu;
  std::vector<std::string> lines;
  EventLogOptions opts;
  opts.clock = &clock;
  opts.sink = obs_test::CapturingSink(&mu, &lines);
  EventLog log(opts);
  log.Log(EventLevel::kInfo, "islabel.test.started",
          {{"dataset", "ds"}, {"gen", EventLog::U64(7)}});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0],
            "{\"ts_ms\":42,\"level\":\"info\",\"event\":"
            "\"islabel.test.started\",\"dataset\":\"ds\",\"gen\":\"7\"}");
}

TEST(EventLog, FieldValuesAreJsonEscaped) {
  ManualClock clock;
  Mutex mu;
  std::vector<std::string> lines;
  EventLogOptions opts;
  opts.clock = &clock;
  opts.sink = obs_test::CapturingSink(&mu, &lines);
  EventLog log(opts);
  log.Log(EventLevel::kError, "islabel.test.started",
          {{"error", "a\"b\\c\nd"}});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"error\":\"a\\\"b\\\\c\\nd\""),
            std::string::npos);
}

TEST(EventLog, MinLevelDropsBelowWithoutCountingAsRateLimited) {
  ManualClock clock;
  Mutex mu;
  std::vector<std::string> lines;
  EventLogOptions opts;
  opts.clock = &clock;
  opts.min_level = EventLevel::kWarn;
  opts.sink = obs_test::CapturingSink(&mu, &lines);
  EventLog log(opts);
  log.Log(EventLevel::kDebug, "islabel.test.started");
  log.Log(EventLevel::kInfo, "islabel.test.started");
  EXPECT_TRUE(lines.empty());
  EXPECT_EQ(log.dropped(), 0u);  // level filtering is not a "drop"
  log.Log(EventLevel::kWarn, "islabel.test.started");
  log.Log(EventLevel::kError, "islabel.test.started");
  EXPECT_EQ(lines.size(), 2u);
}

TEST(EventLog, PerEventTokenBucketRateLimitsAndCountsDrops) {
  ManualClock clock;
  Mutex mu;
  std::vector<std::string> lines;
  EventLogOptions opts;
  opts.clock = &clock;
  opts.sink = obs_test::CapturingSink(&mu, &lines);
  opts.rate_limit_per_sec = 1.0;
  opts.rate_limit_burst = 2.0;
  EventLog log(opts);
  for (int i = 0; i < 5; ++i) log.Log(EventLevel::kInfo, "islabel.test.started");
  EXPECT_EQ(lines.size(), 2u);  // the burst
  EXPECT_EQ(log.dropped(), 3u);
  // A different event name has its own bucket.
  log.Log(EventLevel::kInfo, "islabel.test.stopped");
  EXPECT_EQ(lines.size(), 3u);
  // One second refills one token for the throttled name.
  clock.AdvanceMs(1000);
  log.Log(EventLevel::kInfo, "islabel.test.started");
  log.Log(EventLevel::kInfo, "islabel.test.started");
  EXPECT_EQ(lines.size(), 4u);
  EXPECT_EQ(log.dropped(), 4u);
}

TEST(EventLog, TraceIdAutoAttachesFromCurrentTrace) {
  ManualClock clock;
  Mutex mu;
  std::vector<std::string> lines;
  EventLogOptions opts;
  opts.clock = &clock;
  opts.sink = obs_test::CapturingSink(&mu, &lines);
  EventLog log(opts);

  log.Log(EventLevel::kInfo, "islabel.test.started");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].find("\"tid\""), std::string::npos);  // no trace

  QueryTrace trace(&clock);
  trace.set_trace_id(0xbeef);
  TraceScope scope(&trace);
  log.Log(EventLevel::kInfo, "islabel.test.started");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"tid\":\"beef\""), std::string::npos);

  // An explicit tid field suppresses the auto-attached one.
  log.Log(EventLevel::kInfo, "islabel.test.started", {{"tid", "cafe"}});
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[2].find("\"tid\":\"cafe\""), std::string::npos);
  EXPECT_EQ(lines[2].find("beef"), std::string::npos);
}

TEST(EventLog, NullSinkCountsEveryAdmittedEventAsDropped) {
  ManualClock clock;
  EventLogOptions opts;
  opts.clock = &clock;
  EventLog log(opts);  // no sink
  log.Log(EventLevel::kInfo, "islabel.test.started");
  EXPECT_EQ(log.dropped(), 1u);
}

TEST(EventLog, LevelNamesAndParsingRoundTrip) {
  EXPECT_STREQ(EventLevelName(EventLevel::kDebug), "debug");
  EXPECT_STREQ(EventLevelName(EventLevel::kInfo), "info");
  EXPECT_STREQ(EventLevelName(EventLevel::kWarn), "warn");
  EXPECT_STREQ(EventLevelName(EventLevel::kError), "error");
  EventLevel level = EventLevel::kInfo;
  EXPECT_TRUE(ParseEventLevel("debug", &level));
  EXPECT_EQ(level, EventLevel::kDebug);
  EXPECT_TRUE(ParseEventLevel("error", &level));
  EXPECT_EQ(level, EventLevel::kError);
  EXPECT_FALSE(ParseEventLevel("verbose", &level));
  EXPECT_FALSE(ParseEventLevel("", &level));
}

}  // namespace
}  // namespace obs
}  // namespace islabel
