// Concurrent serving: N threads hammering one index must produce answers
// byte-identical to the single-threaded engine, in both the in-memory and
// the disk-resident label modes, and the batched APIs (QueryBatch,
// QueryOneToMany, QueryManyToMany) must agree with the plain query loop.
// This suite is the workload of the gating ThreadSanitizer CI job — keep
// the graphs small enough that TSan finishes in seconds.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "core/engine_pool.h"
#include "core/index.h"
#include "tests/test_common.h"
#include "util/parallel.h"

namespace islabel {
namespace {

using testing::Family;
using testing::MakeTestGraph;
using testing::SampleQueryPairs;

constexpr unsigned kThreads = 4;

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "islabel_conc_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

/// Single-threaded reference answers through the index's own entry point.
std::vector<Distance> Reference(
    ISLabelIndex* index,
    const std::vector<std::pair<VertexId, VertexId>>& pairs) {
  std::vector<Distance> out(pairs.size(), kInfDistance);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_TRUE(index->Query(pairs[i].first, pairs[i].second, &out[i]).ok());
  }
  return out;
}

/// Runs every pair on `threads` concurrent threads (disjoint chunks) and
/// checks each answer against `expect`.
void HammerAndCheck(ISLabelIndex* index,
                    const std::vector<std::pair<VertexId, VertexId>>& pairs,
                    const std::vector<Distance>& expect, unsigned threads) {
  std::vector<Distance> got(pairs.size(), kInfDistance);
  ParallelForChunks(pairs.size(), threads,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        EXPECT_TRUE(index
                                        ->Query(pairs[i].first,
                                                pairs[i].second, &got[i])
                                        .ok());
                      }
                    });
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(got[i], expect[i])
        << "pair (" << pairs[i].first << "," << pairs[i].second << ")";
  }
}

TEST_F(ConcurrencyTest, InMemoryQueriesMatchSingleThread) {
  for (Family family : {Family::kBarabasiAlbert, Family::kGrid,
                        Family::kDisconnected}) {
    Graph g = MakeTestGraph(family, 200, /*weighted=*/true, 11);
    auto built = ISLabelIndex::Build(g);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ISLabelIndex index = std::move(built).value();
    const auto pairs = SampleQueryPairs(g, 240, 17);
    const auto expect = Reference(&index, pairs);
    HammerAndCheck(&index, pairs, expect, kThreads);
  }
}

TEST_F(ConcurrencyTest, AllThreadsSamePairsContended) {
  // Every thread runs the SAME pairs, maximizing contention on the pool
  // and on shared label bytes.
  Graph g = MakeTestGraph(Family::kErdosRenyi, 180, /*weighted=*/true, 5);
  auto built = ISLabelIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  const auto pairs = SampleQueryPairs(g, 150, 23);
  const auto expect = Reference(&index, pairs);
  std::vector<std::thread> pool;
  for (unsigned w = 0; w < kThreads; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        Distance d = kInfDistance;
        EXPECT_TRUE(
            index.Query(pairs[i].first, pairs[i].second, &d).ok());
        EXPECT_EQ(d, expect[i]);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

TEST_F(ConcurrencyTest, DiskResidentQueriesMatchSingleThread) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 220, /*weighted=*/true, 7);
  auto built = ISLabelIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(dir_).ok());
  auto disk = ISLabelIndex::Load(dir_, /*labels_in_memory=*/false);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ASSERT_TRUE(disk->labels_on_disk());

  const auto pairs = SampleQueryPairs(g, 240, 29);
  const auto expect = Reference(&built.value(), pairs);
  // Concurrent preads against one shared LabelStore.
  HammerAndCheck(&disk.value(), pairs, expect, kThreads);
}

TEST_F(ConcurrencyTest, ConcurrentShortestPathsAreValid) {
  Graph g = MakeTestGraph(Family::kWattsStrogatz, 150, /*weighted=*/true, 3);
  auto built = ISLabelIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  const auto pairs = SampleQueryPairs(g, 60, 31);
  std::vector<std::thread> pool;
  for (unsigned w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      const std::size_t begin = pairs.size() * w / kThreads;
      const std::size_t end = pairs.size() * (w + 1) / kThreads;
      for (std::size_t i = begin; i < end; ++i) {
        std::vector<VertexId> path;
        Distance d = 0;
        ASSERT_TRUE(
            index.ShortestPath(pairs[i].first, pairs[i].second, &path, &d)
                .ok());
        testing::AssertValidPath(g, pairs[i].first, pairs[i].second, path, d);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

TEST_F(ConcurrencyTest, QueryBatchMatchesLoop) {
  Graph g = MakeTestGraph(Family::kRMat, 256, /*weighted=*/true, 13);
  auto built = ISLabelIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  const auto pairs = SampleQueryPairs(g, 300, 37);
  const auto expect = Reference(&index, pairs);
  for (std::uint32_t threads : {1u, 2u, kThreads}) {
    std::vector<Distance> got;
    ASSERT_TRUE(index.QueryBatch(pairs, &got, threads).ok());
    ASSERT_EQ(got, expect) << "threads=" << threads;
  }
}

TEST_F(ConcurrencyTest, QueryBatchReportsPerPairErrors) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 100, /*weighted=*/false, 2);
  auto built = ISLabelIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  const VertexId n = index.NumVertices();
  std::vector<std::pair<VertexId, VertexId>> pairs = {
      {0, 1}, {n, 0}, {2, 3}};
  std::vector<Distance> got;
  std::vector<Status> statuses;
  ASSERT_TRUE(index.QueryBatch(pairs, &got, 2, &statuses).ok());
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].IsOutOfRange());
  EXPECT_EQ(got[1], kInfDistance);
  EXPECT_TRUE(statuses[2].ok());
  // Without a statuses vector the first per-pair error is returned, but
  // the healthy pairs still complete.
  std::vector<Distance> got2;
  Status st = index.QueryBatch(pairs, &got2, 2);
  EXPECT_TRUE(st.IsOutOfRange());
  EXPECT_EQ(got2[0], got[0]);
  EXPECT_EQ(got2[2], got[2]);
}

TEST_F(ConcurrencyTest, OneToManyMatchesLoopInMemory) {
  for (Family family : {Family::kBarabasiAlbert, Family::kDisconnected}) {
    Graph g = MakeTestGraph(family, 200, /*weighted=*/true, 19);
    auto built = ISLabelIndex::Build(g);
    ASSERT_TRUE(built.ok());
    ISLabelIndex index = std::move(built).value();
    const VertexId n = index.NumVertices();
    Rng rng(41);
    for (int round = 0; round < 6; ++round) {
      const VertexId s = static_cast<VertexId>(rng.Uniform(n));
      std::vector<VertexId> targets;
      for (int j = 0; j < 40; ++j) {
        targets.push_back(static_cast<VertexId>(rng.Uniform(n)));
      }
      targets.push_back(s);           // self target
      targets.push_back(targets[0]);  // duplicate target
      std::vector<Distance> got;
      ASSERT_TRUE(index.QueryOneToMany(s, targets, &got).ok());
      ASSERT_EQ(got.size(), targets.size());
      for (std::size_t j = 0; j < targets.size(); ++j) {
        Distance expect = kInfDistance;
        ASSERT_TRUE(index.Query(s, targets[j], &expect).ok());
        ASSERT_EQ(got[j], expect)
            << "s=" << s << " t=" << targets[j] << " round=" << round;
      }
    }
  }
}

TEST_F(ConcurrencyTest, OneToManyMatchesLoopOnDisk) {
  Graph g = MakeTestGraph(Family::kGrid, 196, /*weighted=*/true, 23);
  auto built = ISLabelIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->Save(dir_).ok());
  auto disk = ISLabelIndex::Load(dir_, /*labels_in_memory=*/false);
  ASSERT_TRUE(disk.ok());
  const VertexId n = disk->NumVertices();
  Rng rng(43);
  for (int round = 0; round < 4; ++round) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(n));
    std::vector<VertexId> targets;
    for (int j = 0; j < 30; ++j) {
      targets.push_back(static_cast<VertexId>(rng.Uniform(n)));
    }
    std::vector<Distance> got;
    ASSERT_TRUE(disk->QueryOneToMany(s, targets, &got).ok());
    for (std::size_t j = 0; j < targets.size(); ++j) {
      Distance expect = kInfDistance;
      ASSERT_TRUE(built->Query(s, targets[j], &expect).ok());
      ASSERT_EQ(got[j], expect) << "s=" << s << " t=" << targets[j];
    }
  }
}

TEST_F(ConcurrencyTest, ManyToManyMatchesLoop) {
  Graph g = MakeTestGraph(Family::kErdosRenyi, 160, /*weighted=*/true, 47);
  auto built = ISLabelIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  const VertexId n = index.NumVertices();
  Rng rng(53);
  std::vector<VertexId> sources, targets;
  for (int i = 0; i < 10; ++i) {
    sources.push_back(static_cast<VertexId>(rng.Uniform(n)));
  }
  for (int j = 0; j < 25; ++j) {
    targets.push_back(static_cast<VertexId>(rng.Uniform(n)));
  }
  std::vector<Distance> got;
  ASSERT_TRUE(index.QueryManyToMany(sources, targets, &got, kThreads).ok());
  ASSERT_EQ(got.size(), sources.size() * targets.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (std::size_t j = 0; j < targets.size(); ++j) {
      Distance expect = kInfDistance;
      ASSERT_TRUE(index.Query(sources[i], targets[j], &expect).ok());
      ASSERT_EQ(got[i * targets.size() + j], expect)
          << "s=" << sources[i] << " t=" << targets[j];
    }
  }
}

TEST_F(ConcurrencyTest, PoolRecyclesEnginesSequentially) {
  Graph g = MakeTestGraph(Family::kPath, 60, /*weighted=*/false, 1);
  auto built = ISLabelIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  // Sequential queries lease and return one engine over and over.
  Distance d = 0;
  for (VertexId t = 1; t < 40; ++t) {
    ASSERT_TRUE(index.Query(0, t, &d).ok());
  }
  EXPECT_EQ(index.engine_pool()->EnginesCreated(), 1u);
  // Holding N leases at once forces N distinct engines.
  {
    QueryEnginePool::Lease a = index.engine_pool()->Acquire();
    QueryEnginePool::Lease b = index.engine_pool()->Acquire();
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(index.engine_pool()->EnginesCreated(), 2u);
  }
  // Both returned; the next lease recycles.
  QueryEnginePool::Lease c = index.engine_pool()->Acquire();
  EXPECT_EQ(index.engine_pool()->EnginesCreated(), 2u);
}

TEST_F(ConcurrencyTest, ConcurrentOneToManyAcrossThreads) {
  // Several threads each running one-to-many batches on their own leased
  // engine (exercises the warm forward ball under TSan).
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 180, /*weighted=*/true, 61);
  auto built = ISLabelIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  const VertexId n = index.NumVertices();
  std::vector<VertexId> targets;
  for (VertexId t = 0; t < n; t += 3) targets.push_back(t);
  std::vector<Distance> expect;
  ASSERT_TRUE(index.QueryOneToMany(7 % n, targets, &expect).ok());
  std::vector<std::thread> pool;
  for (unsigned w = 0; w < kThreads; ++w) {
    pool.emplace_back([&] {
      std::vector<Distance> got;
      ASSERT_TRUE(index.QueryOneToMany(7 % n, targets, &got).ok());
      ASSERT_EQ(got, expect);
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace
}  // namespace islabel
