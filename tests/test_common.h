// Shared helpers for the test suite: deterministic graph-family fixtures,
// ground-truth comparison utilities, path validation, and the paper's
// worked example (Figures 1-3) encoded as fixtures.

#ifndef ISLABEL_TESTS_TEST_COMMON_H_
#define ISLABEL_TESTS_TEST_COMMON_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/dijkstra.h"
#include "core/hierarchy.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/random.h"

namespace islabel {
namespace testing {

/// Graph families covering the structural regimes the paper targets
/// (sparse power-law, hub-dominated, grid/road-like, dense-ish random) plus
/// degenerate shapes that stress edge cases.
enum class Family {
  kErdosRenyi,
  kBarabasiAlbert,
  kRMat,
  kGrid,
  kWattsStrogatz,
  kPath,
  kCycle,
  kStar,
  kTree,
  kClique,
  kDisconnected,  // two ER components + isolated vertices
};

inline const char* FamilyName(Family f) {
  switch (f) {
    case Family::kErdosRenyi: return "ErdosRenyi";
    case Family::kBarabasiAlbert: return "BarabasiAlbert";
    case Family::kRMat: return "RMat";
    case Family::kGrid: return "Grid";
    case Family::kWattsStrogatz: return "WattsStrogatz";
    case Family::kPath: return "Path";
    case Family::kCycle: return "Cycle";
    case Family::kStar: return "Star";
    case Family::kTree: return "Tree";
    case Family::kClique: return "Clique";
    case Family::kDisconnected: return "Disconnected";
  }
  return "?";
}

/// Deterministic test graph: `n` is a size hint (grids round down, R-MAT
/// rounds to a power of two). When `weighted`, weights are uniform in
/// [1, 8].
inline Graph MakeTestGraph(Family family, VertexId n, bool weighted,
                           std::uint64_t seed) {
  Rng rng(seed);
  EdgeList edges;
  switch (family) {
    case Family::kErdosRenyi:
      edges = GenerateErdosRenyi(n, static_cast<std::uint64_t>(n) * 2, &rng);
      break;
    case Family::kBarabasiAlbert:
      edges = GenerateBarabasiAlbert(n, 3, &rng);
      break;
    case Family::kRMat: {
      std::uint32_t scale = 1;
      while ((1u << (scale + 1)) <= n) ++scale;
      edges = GenerateRMat(scale, static_cast<std::uint64_t>(n) * 3, 0.57,
                           0.19, 0.19, &rng);
      break;
    }
    case Family::kGrid: {
      std::uint32_t side = 2;
      while ((side + 1) * (side + 1) <= n) ++side;
      edges = GenerateGrid2D(side, side);
      break;
    }
    case Family::kWattsStrogatz:
      edges = GenerateWattsStrogatz(n, 2, 0.1, &rng);
      break;
    case Family::kPath:
      edges = GeneratePath(n);
      break;
    case Family::kCycle:
      edges = GenerateCycle(n);
      break;
    case Family::kStar:
      edges = GenerateStar(n);
      break;
    case Family::kTree:
      edges = GenerateCompleteBinaryTree(n);
      break;
    case Family::kClique:
      edges = GenerateClique(std::min<VertexId>(n, 24));
      break;
    case Family::kDisconnected: {
      const VertexId half = n / 2;
      edges = GenerateErdosRenyi(half, static_cast<std::uint64_t>(half) * 2,
                                 &rng);
      EdgeList other =
          GenerateErdosRenyi(half, static_cast<std::uint64_t>(half) * 2, &rng);
      for (const Edge& e : other.edges()) {
        edges.Add(e.u + half, e.v + half, e.w);
      }
      edges.EnsureVertices(n + 3);  // trailing isolated vertices
      break;
    }
  }
  if (weighted) AssignUniformWeights(&edges, 1, 8, &rng);
  return Graph::FromEdgeList(std::move(edges));
}

/// All property-test families.
inline std::vector<Family> AllFamilies() {
  return {Family::kErdosRenyi, Family::kBarabasiAlbert, Family::kRMat,
          Family::kGrid,       Family::kWattsStrogatz,  Family::kPath,
          Family::kCycle,      Family::kStar,           Family::kTree,
          Family::kClique,     Family::kDisconnected};
}

/// Samples `count` (s, t) pairs, mixing uniform pairs with same-vertex and
/// adjacent pairs to cover degenerate queries.
inline std::vector<std::pair<VertexId, VertexId>> SampleQueryPairs(
    const Graph& g, std::size_t count, std::uint64_t seed) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  Rng rng(seed);
  const VertexId n = g.NumVertices();
  if (n == 0) return pairs;
  for (std::size_t i = 0; i < count; ++i) {
    VertexId s = static_cast<VertexId>(rng.Uniform(n));
    VertexId t = static_cast<VertexId>(rng.Uniform(n));
    if (i % 17 == 0) t = s;  // same-vertex queries
    if (i % 13 == 0 && g.Degree(s) > 0) {
      t = g.Neighbors(s)[rng.Uniform(g.Degree(s))];  // adjacent queries
    }
    pairs.emplace_back(s, t);
  }
  return pairs;
}

/// Asserts that `path` is a genuine s-t path in `g` of total length `dist`.
/// An empty path asserts dist == kInfDistance.
inline void AssertValidPath(const Graph& g, VertexId s, VertexId t,
                            const std::vector<VertexId>& path,
                            Distance dist) {
  if (dist == kInfDistance) {
    ASSERT_TRUE(path.empty()) << "unreachable pair must yield empty path";
    return;
  }
  ASSERT_FALSE(path.empty());
  ASSERT_EQ(path.front(), s);
  ASSERT_EQ(path.back(), t);
  Distance total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const Distance w = g.EdgeWeight(path[i], path[i + 1]);
    ASSERT_NE(w, kInfDistance)
        << "path uses a non-edge (" << path[i] << ", " << path[i + 1] << ")";
    total += w;
  }
  ASSERT_EQ(total, dist) << "path length disagrees with reported distance";
}

// ---------------------------------------------------------------------------
// The paper's worked example (Figures 1-3, Examples 1-6).
//
// Vertex mapping: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8. Unit weights except
// ω(e, f) = 3. The edge set is reconstructed from the example's labels:
// every label-initialization entry names a G_i neighbor, which pins the
// adjacency down uniquely.
// ---------------------------------------------------------------------------

inline constexpr VertexId kA = 0, kB = 1, kC = 2, kD = 3, kE = 4, kF = 5,
                          kG = 6, kH = 7, kI = 8;

inline Graph PaperFigure1Graph() {
  EdgeList edges(9);
  edges.Add(kA, kB, 1);
  edges.Add(kA, kE, 1);
  edges.Add(kB, kC, 1);
  edges.Add(kB, kE, 1);
  edges.Add(kD, kE, 1);
  edges.Add(kD, kG, 1);
  edges.Add(kE, kF, 3);
  edges.Add(kE, kI, 1);
  edges.Add(kF, kH, 1);
  edges.Add(kG, kH, 1);
  return Graph::FromEdgeList(std::move(edges));
}

/// The full vertex hierarchy of Example 1 with the paper's (hand-chosen)
/// independent sets L1={c,f,i}, L2={b,d,h}, L3={e}, L4={a}, L5={g}. The
/// paper's greedy min-degree Algorithm 2 picks a different (equally valid)
/// L1; this fixture pins the exact hierarchy so the labeling/query numbers
/// of Figure 2 can be asserted verbatim.
inline VertexHierarchy PaperFullHierarchy() {
  VertexHierarchy h;
  h.k = 6;  // k = h + 1: every level peeled, G_k empty (§5.1)
  h.level = {4, 2, 1, 2, 3, 1, 5, 2, 1};  // a,b,c,d,e,f,g,h,i
  h.levels = {{}, {kC, kF, kI}, {kB, kD, kH}, {kE}, {kA}, {kG}};
  h.removed_adj.resize(9);
  h.removed_adj[kC] = {{kB, 1}};
  h.removed_adj[kF] = {{kE, 3}, {kH, 1}};
  h.removed_adj[kI] = {{kE, 1}};
  h.removed_adj[kB] = {{kA, 1}, {kE, 1}};
  h.removed_adj[kD] = {{kE, 1}, {kG, 1}};
  h.removed_adj[kH] = {{kE, 4, kF}, {kG, 1}};  // (e,h) augmenting via f
  h.removed_adj[kE] = {{kA, 1}, {kG, 2, kD}};  // (e,g) augmenting via d
  h.removed_adj[kA] = {{kG, 3, kE}};           // (a,g) augmenting via e
  h.removed_adj[kG] = {};
  h.g_k = Graph::FromEdgeList(EdgeList(9), /*keep_vias=*/true);
  h.stats.resize(h.k);
  return h;
}

/// The k=2 variant of Figure 3 / Example 5: only L1={c,f,i} is peeled and
/// G_2 (6 vertices, 7 edges incl. the (e,h) augmenting edge of weight 4)
/// is the residual core.
inline VertexHierarchy PaperK2Hierarchy() {
  VertexHierarchy h;
  h.k = 2;
  h.level = {2, 2, 1, 2, 2, 1, 2, 2, 1};  // c,f,i at level 1; rest core
  h.levels = {{}, {kC, kF, kI}};
  h.removed_adj.resize(9);
  h.removed_adj[kC] = {{kB, 1}};
  h.removed_adj[kF] = {{kE, 3}, {kH, 1}};
  h.removed_adj[kI] = {{kE, 1}};
  EdgeList core(9);
  core.Add(kA, kB, 1);
  core.Add(kA, kE, 1);
  core.Add(kB, kE, 1);
  core.Add(kD, kE, 1);
  core.Add(kD, kG, 1);
  core.Add(kE, kH, 4, kF);  // augmenting via f
  core.Add(kG, kH, 1);
  h.g_k = Graph::FromEdgeList(std::move(core), /*keep_vias=*/true);
  h.stats.resize(h.k);
  h.stats.back().num_vertices = 6;
  h.stats.back().num_edges = 7;
  return h;
}

}  // namespace testing
}  // namespace islabel

#endif  // ISLABEL_TESTS_TEST_COMMON_H_
