// Integration tests: the full pipeline on bench-style synthetic datasets,
// all query methods cross-agreeing, and Table-3-style structural
// expectations.

#include <gtest/gtest.h>

#include <filesystem>

#include "baseline/bidijkstra.h"
#include "baseline/dijkstra.h"
#include "baseline/pll.h"
#include "baseline/vc_index.h"
#include "core/index.h"
#include "graph/components.h"
#include "graph/stats.h"
#include "tests/test_common.h"

namespace islabel {
namespace {

using testing::Family;
using testing::MakeTestGraph;
using testing::SampleQueryPairs;

TEST(Integration, AllMethodsAgreeOnSocialStandIn) {
  // A BA graph shaped like the paper's web-Google stand-in, scaled down.
  Rng rng(2024);
  Graph full = Graph::FromEdgeList(GenerateBarabasiAlbert(2000, 5, &rng));
  LargestComponent lcc = ExtractLargestComponent(full);
  const Graph& g = lcc.graph;

  auto is_built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(is_built.ok());
  ISLabelIndex index = std::move(is_built).value();

  auto vc_built = VcIndex::Build(g);
  ASSERT_TRUE(vc_built.ok());
  VcIndex vc = std::move(vc_built).value();

  auto pll_built = PrunedLandmarkLabeling::Build(g);
  ASSERT_TRUE(pll_built.ok());
  PrunedLandmarkLabeling pll = std::move(pll_built).value();

  BidirectionalDijkstra bidij(&g);

  for (auto [s, t] : SampleQueryPairs(g, 200, 4242)) {
    Distance d_is = 0;
    ASSERT_TRUE(index.Query(s, t, &d_is).ok());
    const Distance d_dij = DijkstraP2P(g, s, t);
    const Distance d_bi = bidij.Query(s, t);
    const Distance d_vc = vc.QueryP2P(s, t);
    const Distance d_pll = pll.Query(s, t);
    ASSERT_EQ(d_is, d_dij) << "IS-LABEL (" << s << "," << t << ")";
    ASSERT_EQ(d_bi, d_dij) << "IM-DIJ (" << s << "," << t << ")";
    ASSERT_EQ(d_vc, d_dij) << "VC-Index (" << s << "," << t << ")";
    ASSERT_EQ(d_pll, d_dij) << "PLL (" << s << "," << t << ")";
  }
}

TEST(Integration, BuildStatsAreConsistent) {
  Graph g = MakeTestGraph(Family::kRMat, 2048, false, 99);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  const BuildStats& bs = built->build_stats();

  EXPECT_GE(bs.k, 2u);
  EXPECT_EQ(bs.k, built->k());
  // The core is strictly smaller than the input (Table 3's |V_Gk| << |V|).
  EXPECT_LT(bs.core_vertices, g.NumVertices());
  EXPECT_EQ(bs.core_edges, built->hierarchy().g_k.NumEdges());
  // Every vertex has at least its self entry.
  EXPECT_GE(bs.label_entries, g.NumVertices());
  EXPECT_EQ(bs.level_stats.size(), bs.k);
  EXPECT_GT(bs.total_seconds, 0.0);
  // Level-1 row describes the input graph.
  EXPECT_EQ(bs.level_stats[0].num_vertices, g.NumVertices());
  EXPECT_EQ(bs.level_stats[0].num_edges, g.NumEdges());
}

TEST(Integration, DeeperKShrinksCoreGrowsLabels) {
  // The Table 6 trade-off: larger forced k => smaller G_k, larger labels.
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 1500, false, 7);
  IndexOptions small_k;
  small_k.forced_k = 2;
  IndexOptions big_k;
  big_k.forced_k = 6;
  auto a = ISLabelIndex::Build(g, small_k);
  auto b = ISLabelIndex::Build(g, big_k);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->build_stats().core_vertices, b->build_stats().core_vertices);
  EXPECT_LT(a->build_stats().label_entries, b->build_stats().label_entries);
}

TEST(Integration, WeightedLccPipelineEndToEnd) {
  // Mirrors the Web stand-in: weights in {1,2}, LCC extraction, σ = 0.95.
  Rng rng(11);
  EdgeList el = GenerateRMat(11, 8 * (1u << 11), 0.57, 0.19, 0.19, &rng);
  AssignUniformWeights(&el, 1, 2, &rng);
  Graph full = Graph::FromEdgeList(std::move(el));
  LargestComponent lcc = ExtractLargestComponent(full);
  const Graph& g = lcc.graph;
  ASSERT_GT(g.NumVertices(), 100u);

  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  for (auto [s, t] : SampleQueryPairs(g, 150, 5)) {
    Distance d = 0;
    ASSERT_TRUE(index.Query(s, t, &d).ok());
    ASSERT_EQ(d, DijkstraP2P(g, s, t));
  }
}

TEST(Integration, SaveLoadQueryLifecycle) {
  Graph g = MakeTestGraph(Family::kWattsStrogatz, 800, true, 3);
  std::string dir = ::testing::TempDir() + "islabel_integration";
  std::filesystem::create_directories(dir);

  {
    auto built = ISLabelIndex::Build(g, IndexOptions{});
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE(built->Save(dir).ok());
  }
  // Memory mode and disk mode agree with ground truth.
  auto mem = ISLabelIndex::Load(dir, true);
  auto disk = ISLabelIndex::Load(dir, false);
  ASSERT_TRUE(mem.ok());
  ASSERT_TRUE(disk.ok());
  for (auto [s, t] : SampleQueryPairs(g, 80, 9)) {
    Distance dm = 0, dd = 0;
    ASSERT_TRUE(mem->Query(s, t, &dm).ok());
    ASSERT_TRUE(disk->Query(s, t, &dd).ok());
    const Distance truth = DijkstraP2P(g, s, t);
    ASSERT_EQ(dm, truth);
    ASSERT_EQ(dd, truth);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(Integration, QueryStatsDistinguishTimeAAndTimeB) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 1000, false, 13);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  double time_a = 0.0, time_b = 0.0;
  std::uint64_t searches = 0;
  for (auto [s, t] : SampleQueryPairs(g, 100, 21)) {
    Distance d;
    QueryStats stats;
    ASSERT_TRUE(index.Query(s, t, &d, &stats).ok());
    time_a += stats.label_fetch_seconds;
    time_b += stats.search_seconds;
    searches += stats.used_search;
  }
  // On a connected BA graph with k-level termination, most random queries
  // reach the core (Type 2 / search).
  EXPECT_GT(searches, 50u);
  EXPECT_GE(time_a, 0.0);
  EXPECT_GT(time_b, 0.0);
}

}  // namespace
}  // namespace islabel
