// Unit tests for the graph substrate: edge lists, CSR graphs, directed
// graphs, generators, components, stats.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/components.h"
#include "graph/digraph.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/stats.h"
#include "core/hierarchy.h"
#include "tests/test_common.h"

namespace islabel {
namespace {

using testing::Family;
using testing::MakeTestGraph;

// ---------- EdgeList ----------

TEST(EdgeList, NormalizeDropsSelfLoops) {
  EdgeList el;
  el.Add(1, 1, 5);
  el.Add(0, 1, 2);
  el.Normalize();
  ASSERT_EQ(el.size(), 1u);
  EXPECT_EQ(el.edges()[0].u, 0u);
  EXPECT_EQ(el.edges()[0].v, 1u);
}

TEST(EdgeList, NormalizeMergesParallelKeepingMinWeight) {
  EdgeList el;
  el.Add(2, 1, 9);
  el.Add(1, 2, 4, /*via=*/7);
  el.Add(2, 1, 6);
  el.Normalize();
  ASSERT_EQ(el.size(), 1u);
  EXPECT_EQ(el.edges()[0].w, 4u);
  EXPECT_EQ(el.edges()[0].via, 7u);  // the min-weight copy's via survives
}

TEST(EdgeList, NormalizeOrientsAndSorts) {
  EdgeList el;
  el.Add(5, 3);
  el.Add(2, 4);
  el.Add(1, 0);
  el.Normalize();
  ASSERT_EQ(el.size(), 3u);
  EXPECT_EQ(el.edges()[0].u, 0u);
  EXPECT_EQ(el.edges()[1].u, 2u);
  EXPECT_EQ(el.edges()[2].u, 3u);
}

TEST(EdgeList, TracksVertexCount) {
  EdgeList el;
  el.Add(3, 9);
  EXPECT_EQ(el.num_vertices(), 10u);
  el.EnsureVertices(20);
  EXPECT_EQ(el.num_vertices(), 20u);
  el.EnsureVertices(5);  // never shrinks
  EXPECT_EQ(el.num_vertices(), 20u);
}

// ---------- Graph (CSR) ----------

TEST(Graph, EmptyGraph) {
  Graph g = Graph::FromEdgeList(EdgeList(0));
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(Graph, IsolatedVertices) {
  Graph g = Graph::FromEdgeList(EdgeList(5));
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.Degree(3), 0u);
}

TEST(Graph, AdjacencyIsSymmetricAndSorted) {
  Rng rng(3);
  EdgeList el = GenerateErdosRenyi(200, 600, &rng);
  Graph g = Graph::FromEdgeList(el);
  std::uint64_t degree_sum = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.Neighbors(v);
    degree_sum += nbrs.size();
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    for (VertexId u : nbrs) {
      EXPECT_TRUE(g.HasEdge(u, v)) << "missing reverse edge";
      EXPECT_NE(u, v) << "self loop survived";
    }
  }
  EXPECT_EQ(degree_sum, 2 * g.NumEdges());
}

TEST(Graph, EdgeWeightLookup) {
  EdgeList el(4);
  el.Add(0, 1, 7);
  el.Add(1, 2, 3);
  Graph g = Graph::FromEdgeList(el);
  EXPECT_EQ(g.EdgeWeight(0, 1), 7u);
  EXPECT_EQ(g.EdgeWeight(1, 0), 7u);
  EXPECT_EQ(g.EdgeWeight(1, 2), 3u);
  EXPECT_EQ(g.EdgeWeight(0, 2), kInfDistance);
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(Graph, ToEdgeListRoundTrip) {
  Rng rng(5);
  EdgeList el = GenerateBarabasiAlbert(100, 3, &rng);
  AssignUniformWeights(&el, 1, 9, &rng);
  Graph g = Graph::FromEdgeList(el);
  Graph g2 = Graph::FromEdgeList(g.ToEdgeList());
  ASSERT_EQ(g.NumVertices(), g2.NumVertices());
  ASSERT_EQ(g.NumEdges(), g2.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto a = g.Neighbors(v);
    auto b = g2.Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]);
      EXPECT_EQ(g.NeighborWeights(v)[i], g2.NeighborWeights(v)[i]);
    }
  }
}

TEST(Graph, ViasPreserved) {
  EdgeList el(3);
  el.Add(0, 1, 2, /*via=*/2);
  Graph g = Graph::FromEdgeList(el, /*keep_vias=*/true);
  ASSERT_TRUE(g.has_vias());
  EXPECT_EQ(g.NeighborVias(0)[0], 2u);
  EXPECT_EQ(g.NeighborVias(1)[0], 2u);
}

TEST(Graph, SizeVEMatchesDefinition) {
  Graph g = MakeTestGraph(Family::kGrid, 100, false, 1);
  EXPECT_EQ(g.SizeVE(), g.NumVertices() + g.NumEdges());
}

// ---------- DiGraph ----------

TEST(DiGraph, OutAndInAdjacency) {
  std::vector<Arc> arcs = {{0, 1, 5}, {1, 2, 3}, {2, 0, 1}, {0, 2, 9}};
  DiGraph g = DiGraph::FromArcs(arcs);
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumArcs(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.ArcWeight(0, 1), 5u);
  EXPECT_EQ(g.ArcWeight(1, 0), kInfDistance);  // directed!
  // In-neighbors of 2: 0 and 1.
  auto in2 = g.InNeighbors(2);
  ASSERT_EQ(in2.size(), 2u);
  EXPECT_EQ(in2[0], 0u);
  EXPECT_EQ(in2[1], 1u);
}

TEST(DiGraph, ParallelArcsMergedMinWeight) {
  std::vector<Arc> arcs = {{0, 1, 5}, {0, 1, 2}, {0, 1, 8}};
  DiGraph g = DiGraph::FromArcs(arcs);
  EXPECT_EQ(g.NumArcs(), 1u);
  EXPECT_EQ(g.ArcWeight(0, 1), 2u);
}

TEST(DiGraph, SelfLoopsDropped) {
  std::vector<Arc> arcs = {{0, 0, 1}, {0, 1, 1}};
  DiGraph g = DiGraph::FromArcs(arcs);
  EXPECT_EQ(g.NumArcs(), 1u);
}

// ---------- Generators ----------

TEST(Generators, ErdosRenyiHasRequestedEdges) {
  Rng rng(1);
  EdgeList el = GenerateErdosRenyi(100, 300, &rng);
  el.Normalize();
  EXPECT_EQ(el.size(), 300u);
}

TEST(Generators, ErdosRenyiCapsAtCompleteGraph) {
  Rng rng(1);
  EdgeList el = GenerateErdosRenyi(5, 1000, &rng);
  el.Normalize();
  EXPECT_EQ(el.size(), 10u);  // C(5,2)
}

TEST(Generators, BarabasiAlbertPowerLaw) {
  Rng rng(2);
  Graph g = Graph::FromEdgeList(GenerateBarabasiAlbert(2000, 3, &rng));
  GraphStats s = ComputeStats(g);
  // Preferential attachment: hubs far above the mean degree.
  EXPECT_GT(s.max_degree, 8 * s.avg_degree);
  // Connected by construction.
  EXPECT_EQ(FindComponents(g).num_components, 1u);
}

TEST(Generators, RMatProducesHubs) {
  Rng rng(3);
  Graph g = Graph::FromEdgeList(
      GenerateRMat(12, 3 * (1 << 12), 0.57, 0.19, 0.19, &rng));
  GraphStats s = ComputeStats(g);
  EXPECT_GT(s.max_degree, 5 * s.avg_degree);
}

TEST(Generators, Grid2DStructure) {
  Graph g = Graph::FromEdgeList(GenerateGrid2D(4, 5));
  EXPECT_EQ(g.NumVertices(), 20u);
  // 4x5 grid: 4*(5-1) horizontal + (4-1)*5 vertical = 16 + 15.
  EXPECT_EQ(g.NumEdges(), 31u);
  EXPECT_EQ(g.Degree(0), 2u);   // corner
  EXPECT_EQ(g.Degree(6), 4u);   // interior
}

TEST(Generators, DeterministicShapes) {
  EXPECT_EQ(Graph::FromEdgeList(GeneratePath(10)).NumEdges(), 9u);
  EXPECT_EQ(Graph::FromEdgeList(GenerateCycle(10)).NumEdges(), 10u);
  EXPECT_EQ(Graph::FromEdgeList(GenerateStar(10)).Degree(0), 9u);
  EXPECT_EQ(Graph::FromEdgeList(GenerateClique(6)).NumEdges(), 15u);
  Graph tree = Graph::FromEdgeList(GenerateCompleteBinaryTree(15));
  EXPECT_EQ(tree.NumEdges(), 14u);
  EXPECT_EQ(FindComponents(tree).num_components, 1u);
}

TEST(Generators, WattsStrogatzDegreeSum) {
  Rng rng(4);
  Graph g = Graph::FromEdgeList(GenerateWattsStrogatz(500, 3, 0.2, &rng));
  // Ring lattice gives 3 edges per vertex before rewiring/dedup.
  EXPECT_LE(g.NumEdges(), 1500u);
  EXPECT_GT(g.NumEdges(), 1200u);
}

TEST(Generators, CliqueCommunityStructure) {
  Rng rng(9);
  EdgeList el = GenerateCliqueCommunity(1600, 16, 0.0, 0.0, 0.0, &rng);
  Graph g = Graph::FromEdgeList(el);
  // Pure cliques: every vertex has degree exactly clique_size - 1.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(g.Degree(v), 15u);
  }
  EXPECT_EQ(FindComponents(g).num_components, 100u);
}

TEST(Generators, CliqueCommunityExternalLinksConnect) {
  Rng rng(9);
  Graph g = Graph::FromEdgeList(
      GenerateCliqueCommunity(2000, 10, 0.8, 0.0, 0.0, &rng));
  // Dense external links join most cliques into one large component.
  ComponentsResult comps = FindComponents(g);
  EXPECT_GT(comps.largest_size, g.NumVertices() / 2);
}

TEST(Generators, CliqueCommunityChainPeriphery) {
  Rng rng(9);
  Graph g = Graph::FromEdgeList(
      GenerateCliqueCommunity(1000, 10, 0.2, 0.5, 16.0, &rng));
  // Half the vertices live in chains: many degree-1/2 vertices.
  std::size_t low_degree = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    low_degree += (g.Degree(v) <= 2);
  }
  EXPECT_GT(low_degree, g.NumVertices() / 4);
}

TEST(Generators, CliqueCommunityEnablesDeepHierarchies) {
  // The property the generator exists for (DESIGN.md §3): clustered
  // neighborhoods keep the sigma criterion shrinking level after level.
  Rng rng(1);
  Graph g = Graph::FromEdgeList(
      GenerateCliqueCommunity(4000, 16, 0.25, 0.0, 0.0, &rng));
  auto h = BuildHierarchy(g, IndexOptions{});
  ASSERT_TRUE(h.ok());
  EXPECT_GE(h->k, 6u) << "clique communities must peel deeply";
}

TEST(Generators, UniformWeightsInRange) {
  Rng rng(5);
  EdgeList el = GeneratePath(1000);
  AssignUniformWeights(&el, 3, 7, &rng);
  std::set<Weight> seen;
  for (const Edge& e : el.edges()) {
    EXPECT_GE(e.w, 3u);
    EXPECT_LE(e.w, 7u);
    seen.insert(e.w);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Generators, SameSeedSameGraph) {
  Rng r1(42), r2(42);
  EdgeList a = GenerateRMat(8, 700, 0.57, 0.19, 0.19, &r1);
  EdgeList b = GenerateRMat(8, 700, 0.57, 0.19, 0.19, &r2);
  a.Normalize();
  b.Normalize();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.edges()[i], b.edges()[i]);
  }
}

// ---------- Components ----------

TEST(Components, SingleComponent) {
  Graph g = Graph::FromEdgeList(GeneratePath(50));
  ComponentsResult r = FindComponents(g);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.largest_size, 50u);
}

TEST(Components, CountsIsolatedVertices) {
  EdgeList el(5);
  el.Add(0, 1);
  Graph g = Graph::FromEdgeList(el);
  ComponentsResult r = FindComponents(g);
  EXPECT_EQ(r.num_components, 4u);  // {0,1}, {2}, {3}, {4}
  EXPECT_EQ(r.largest_size, 2u);
}

TEST(Components, ExtractLargestRemapsDensely) {
  EdgeList el(10);
  el.Add(0, 1);
  el.Add(1, 2);
  el.Add(5, 6);  // smaller component
  Graph g = Graph::FromEdgeList(el);
  LargestComponent lcc = ExtractLargestComponent(g);
  EXPECT_EQ(lcc.graph.NumVertices(), 3u);
  EXPECT_EQ(lcc.graph.NumEdges(), 2u);
  // Mapping is a bijection between LCC vertices and new ids.
  for (VertexId nv = 0; nv < 3u; ++nv) {
    EXPECT_EQ(lcc.old_to_new[lcc.new_to_old[nv]], nv);
  }
  EXPECT_EQ(lcc.old_to_new[5], kInvalidVertex);
}

// The partitioner of src/catalog/ routes every query through the
// components scan, so its degenerate shapes are load-bearing.

TEST(Components, EmptyGraph) {
  Graph g;
  ComponentsResult r = FindComponents(g);
  EXPECT_EQ(r.num_components, 0u);
  EXPECT_EQ(r.largest_size, 0u);
  EXPECT_TRUE(r.component.empty());
  LargestComponent lcc = ExtractLargestComponent(g);
  EXPECT_EQ(lcc.graph.NumVertices(), 0u);
  EXPECT_TRUE(lcc.old_to_new.empty());
  EXPECT_TRUE(lcc.new_to_old.empty());
}

TEST(Components, AllIsolatedVertices) {
  EdgeList el;
  el.EnsureVertices(7);
  Graph g = Graph::FromEdgeList(el);
  ComponentsResult r = FindComponents(g);
  EXPECT_EQ(r.num_components, 7u);
  EXPECT_EQ(r.largest_size, 1u);
  // Every vertex is its own component, numbered in id order.
  for (VertexId v = 0; v < 7u; ++v) {
    EXPECT_EQ(r.component[v], v);
  }
  LargestComponent lcc = ExtractLargestComponent(g);
  EXPECT_EQ(lcc.graph.NumVertices(), 1u);
  EXPECT_EQ(lcc.new_to_old[0], 0u);  // ties break toward component 0
}

TEST(Components, SelfLoopsDoNotConnect) {
  // Self-loops are dropped by CSR normalization, so a vertex with only a
  // self-loop is still isolated.
  EdgeList el(4);
  el.Add(0, 0, 5);
  el.Add(1, 2, 1);
  el.Add(3, 3, 2);
  Graph g = Graph::FromEdgeList(el);
  ComponentsResult r = FindComponents(g);
  EXPECT_EQ(r.num_components, 3u);  // {0}, {1,2}, {3}
  EXPECT_EQ(r.largest_size, 2u);
  EXPECT_EQ(r.component[1], r.component[2]);
  EXPECT_NE(r.component[0], r.component[3]);
}

TEST(Components, SingleGiantComponent) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 500, /*weighted=*/true, 3);
  ComponentsResult r = FindComponents(g);
  ASSERT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.largest, 0u);
  EXPECT_EQ(r.largest_size, g.NumVertices());
  // Extraction of the only component is the identity mapping.
  LargestComponent lcc = ExtractLargestComponent(g);
  ASSERT_EQ(lcc.graph.NumVertices(), g.NumVertices());
  EXPECT_EQ(lcc.graph.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(lcc.old_to_new[v], v);
    EXPECT_EQ(lcc.new_to_old[v], v);
  }
}

TEST(Components, LargestComponentPreservesWeights) {
  EdgeList el(6);
  el.Add(0, 1, 9);
  el.Add(1, 2, 4);
  el.Add(4, 5, 1);
  Graph g = Graph::FromEdgeList(el);
  LargestComponent lcc = ExtractLargestComponent(g);
  EXPECT_EQ(lcc.graph.EdgeWeight(lcc.old_to_new[0], lcc.old_to_new[1]), 9u);
}

// ---------- Stats ----------

TEST(Stats, ComputesTable2Columns) {
  Graph g = Graph::FromEdgeList(GenerateStar(101));
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_vertices, 101u);
  EXPECT_EQ(s.num_edges, 100u);
  EXPECT_EQ(s.max_degree, 100u);
  EXPECT_NEAR(s.avg_degree, 200.0 / 101.0, 1e-9);
  EXPECT_GT(s.disk_size_bytes, 0u);
}

TEST(Stats, HumanFormatting) {
  EXPECT_EQ(HumanCount(950), "950");
  EXPECT_EQ(HumanCount(1500), "1.5K");
  EXPECT_EQ(HumanCount(2200000), "2.2M");
  EXPECT_EQ(HumanCount(3100000000ULL), "3.1B");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(5ULL << 20), "5.0 MB");
  EXPECT_EQ(HumanBytes(3ULL << 30), "3.0 GB");
}

}  // namespace
}  // namespace islabel
