// Tests for the retry helpers (util/retry.h): capped jittered
// exponential backoff and injected-clock deadlines. Everything here is
// deterministic — seeded Rng, ManualClock, no sleeps — because the
// replication layer's failover schedules must replay bit-for-bit.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/clock.h"
#include "util/random.h"
#include "util/retry.h"

namespace islabel {
namespace {

TEST(Backoff, GrowsExponentiallyWithoutJitter) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 100;
  policy.max_delay_ms = 10'000;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  Rng rng(1);
  Backoff backoff(policy, &rng);
  EXPECT_EQ(backoff.NextDelayMs(), 100u);
  EXPECT_EQ(backoff.NextDelayMs(), 200u);
  EXPECT_EQ(backoff.NextDelayMs(), 400u);
  EXPECT_EQ(backoff.NextDelayMs(), 800u);
  EXPECT_EQ(backoff.failures(), 4u);
}

TEST(Backoff, CapsAtMaxDelay) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 100;
  policy.max_delay_ms = 500;
  policy.multiplier = 3.0;
  policy.jitter = 0.0;
  Rng rng(1);
  Backoff backoff(policy, &rng);
  EXPECT_EQ(backoff.NextDelayMs(), 100u);
  EXPECT_EQ(backoff.NextDelayMs(), 300u);
  // 900 would exceed the cap; the cap is a hard bound.
  EXPECT_EQ(backoff.NextDelayMs(), 500u);
  EXPECT_EQ(backoff.NextDelayMs(), 500u);
}

TEST(Backoff, ResetRestartsTheSchedule) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 50;
  policy.jitter = 0.0;
  Rng rng(1);
  Backoff backoff(policy, &rng);
  EXPECT_EQ(backoff.NextDelayMs(), 50u);
  EXPECT_EQ(backoff.NextDelayMs(), 100u);
  backoff.Reset();
  EXPECT_EQ(backoff.failures(), 0u);
  EXPECT_EQ(backoff.NextDelayMs(), 50u);
}

TEST(Backoff, JitterStaysWithinBandAndBelowCap) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 1000;
  policy.max_delay_ms = 4000;
  policy.multiplier = 2.0;
  policy.jitter = 0.5;  // delay in [base/2, base]
  Rng rng(42);
  Backoff backoff(policy, &rng);
  std::uint64_t base = 1000;
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t d = backoff.NextDelayMs();
    EXPECT_GE(d, base / 2) << "attempt " << i;
    EXPECT_LE(d, base) << "attempt " << i;
    EXPECT_LE(d, policy.max_delay_ms);
    base = std::min<std::uint64_t>(base * 2, policy.max_delay_ms);
  }
}

TEST(Backoff, SameSeedReplaysTheSameSchedule) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 70;
  policy.jitter = 0.5;
  std::vector<std::uint64_t> first, second;
  {
    Rng rng(777);
    Backoff backoff(policy, &rng);
    for (int i = 0; i < 10; ++i) first.push_back(backoff.NextDelayMs());
  }
  {
    Rng rng(777);
    Backoff backoff(policy, &rng);
    for (int i = 0; i < 10; ++i) second.push_back(backoff.NextDelayMs());
  }
  EXPECT_EQ(first, second);
}

TEST(Backoff, SubUnitMultiplierMeansConstantDelay) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 80;
  policy.multiplier = 0.25;  // treated as 1.0
  policy.jitter = 0.0;
  Rng rng(1);
  Backoff backoff(policy, &rng);
  EXPECT_EQ(backoff.NextDelayMs(), 80u);
  EXPECT_EQ(backoff.NextDelayMs(), 80u);
  EXPECT_EQ(backoff.NextDelayMs(), 80u);
}

TEST(Deadline, ExpiresExactlyOnTheManualClock) {
  ManualClock clock(1000);
  const Deadline deadline = Deadline::After(250, &clock);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_EQ(deadline.RemainingMs(), 250u);
  clock.AdvanceMs(249);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_EQ(deadline.RemainingMs(), 1u);
  clock.AdvanceMs(1);
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.RemainingMs(), 0u);
  clock.AdvanceMs(1'000'000);
  EXPECT_EQ(deadline.RemainingMs(), 0u) << "remaining clamps, no underflow";
}

TEST(Deadline, InfiniteNeverExpires) {
  ManualClock clock(0);
  const Deadline deadline = Deadline::Infinite(&clock);
  clock.AdvanceMs(~0ull / 2);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.RemainingMs(), 0u);
}

TEST(ManualClockTest, AdvancesOnlyWhenTold) {
  ManualClock clock(5);
  EXPECT_EQ(clock.NowMs(), 5u);
  clock.AdvanceMs(10);
  EXPECT_EQ(clock.NowMs(), 15u);
  clock.SetMs(3);
  EXPECT_EQ(clock.NowMs(), 3u);
}

}  // namespace
}  // namespace islabel
