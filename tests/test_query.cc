// Query correctness: Equation 1 on the full hierarchy (Theorem 2), the
// k-level label-based bi-Dijkstra (Theorems 3/4), query classification,
// and the paper's worked query examples.

#include <gtest/gtest.h>

#include <filesystem>
#include <limits>
#include <tuple>

#include "baseline/bfs.h"
#include "baseline/dijkstra.h"
#include "core/index.h"
#include "core/labeling.h"
#include "core/query.h"
#include "tests/test_common.h"

namespace islabel {
namespace {

using testing::Family;
using testing::MakeTestGraph;
using testing::SampleQueryPairs;

// ---------- Exactness across graph families and configurations ----------

struct QueryCase {
  Family family;
  VertexId n;
  bool weighted;
  bool full_hierarchy;
  int seed;
};

class QueryExactnessTest : public ::testing::TestWithParam<QueryCase> {};

TEST_P(QueryExactnessTest, MatchesDijkstraOnSampledPairs) {
  const QueryCase& c = GetParam();
  Graph g = MakeTestGraph(c.family, c.n, c.weighted, c.seed);
  IndexOptions opts;
  opts.full_hierarchy = c.full_hierarchy;
  auto built = ISLabelIndex::Build(g, opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ISLabelIndex index = std::move(built).value();

  // Sampled pairs, plus per-source full validation against SSSP for a few
  // sources (covers unreachable pairs on disconnected families).
  for (auto [s, t] : SampleQueryPairs(g, 150, c.seed * 131 + 7)) {
    Distance got = 0;
    ASSERT_TRUE(index.Query(s, t, &got).ok());
    // Spot distances: P2P Dijkstra gives ground truth.
    const Distance expect = DijkstraP2P(g, s, t);
    ASSERT_EQ(got, expect) << "query (" << s << "," << t << ")";
  }
  for (VertexId s = 0; s < std::min<VertexId>(g.NumVertices(), 4); ++s) {
    SsspResult sssp = DijkstraSssp(g, s);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      Distance got = 0;
      ASSERT_TRUE(index.Query(s, t, &got).ok());
      ASSERT_EQ(got, sssp.dist[t]) << "query (" << s << "," << t << ")";
    }
  }
}

std::string QueryCaseName(const ::testing::TestParamInfo<QueryCase>& info) {
  const QueryCase& c = info.param;
  return std::string(testing::FamilyName(c.family)) + "_" +
         std::to_string(c.n) + (c.weighted ? "_W" : "_U") +
         (c.full_hierarchy ? "_Full" : "_Klevel") + "_s" +
         std::to_string(c.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Families, QueryExactnessTest,
    ::testing::Values(
        QueryCase{Family::kErdosRenyi, 120, false, false, 1},
        QueryCase{Family::kErdosRenyi, 120, true, false, 2},
        QueryCase{Family::kErdosRenyi, 120, true, true, 3},
        QueryCase{Family::kBarabasiAlbert, 150, false, false, 1},
        QueryCase{Family::kBarabasiAlbert, 150, true, true, 2},
        QueryCase{Family::kRMat, 128, false, false, 1},
        QueryCase{Family::kRMat, 128, true, false, 2},
        QueryCase{Family::kRMat, 256, true, true, 3},
        QueryCase{Family::kGrid, 144, false, false, 1},
        QueryCase{Family::kGrid, 144, true, false, 2},
        QueryCase{Family::kWattsStrogatz, 130, false, false, 1},
        QueryCase{Family::kWattsStrogatz, 130, true, true, 2},
        QueryCase{Family::kPath, 90, true, false, 1},
        QueryCase{Family::kCycle, 90, true, false, 1},
        QueryCase{Family::kStar, 100, true, false, 1},
        QueryCase{Family::kTree, 127, true, false, 1},
        QueryCase{Family::kClique, 24, true, false, 1},
        QueryCase{Family::kDisconnected, 120, false, false, 1},
        QueryCase{Family::kDisconnected, 120, true, true, 2}),
    QueryCaseName);

// Sweep forced k: correctness must hold at every cut level.
class ForcedKTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ForcedKTest, ExactAtEveryK) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 200, true, 5);
  IndexOptions opts;
  opts.forced_k = GetParam();
  auto built = ISLabelIndex::Build(g, opts);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  EXPECT_EQ(index.k(), GetParam());
  SsspResult sssp = DijkstraSssp(g, 17);
  for (VertexId t = 0; t < g.NumVertices(); ++t) {
    Distance got = 0;
    ASSERT_TRUE(index.Query(17, t, &got).ok());
    ASSERT_EQ(got, sssp.dist[t]);
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, ForcedKTest,
                         ::testing::Values(2u, 3u, 4u, 6u, 8u));

// ---------- Unweighted graphs double-checked against BFS ----------

TEST(Query, UnweightedAgreesWithBfs) {
  Graph g = MakeTestGraph(Family::kRMat, 256, false, 9);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  std::vector<Distance> bfs = BfsDistances(g, 3);
  for (VertexId t = 0; t < g.NumVertices(); ++t) {
    Distance got = 0;
    ASSERT_TRUE(index.Query(3, t, &got).ok());
    ASSERT_EQ(got, bfs[t]);
  }
}

// ---------- Query classification and stats ----------

TEST(Query, LocationTypesReported) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 300, false, 4);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();

  VertexId core1 = kInvalidVertex, core2 = kInvalidVertex;
  VertexId low1 = kInvalidVertex, low2 = kInvalidVertex;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (index.InCore(v)) {
      (core1 == kInvalidVertex ? core1 : core2) = v;
    } else {
      (low1 == kInvalidVertex ? low1 : low2) = v;
    }
  }
  ASSERT_NE(core2, kInvalidVertex);
  ASSERT_NE(low2, kInvalidVertex);

  QueryStats stats;
  Distance d;
  ASSERT_TRUE(index.Query(core1, core2, &d, &stats).ok());
  EXPECT_EQ(stats.location, LocationType::kBothInCore);
  ASSERT_TRUE(index.Query(core1, low1, &d, &stats).ok());
  EXPECT_EQ(stats.location, LocationType::kOneInCore);
  ASSERT_TRUE(index.Query(low1, low2, &d, &stats).ok());
  EXPECT_EQ(stats.location, LocationType::kNoneInCore);
}

TEST(Query, FullHierarchyNeverSearches) {
  Graph g = MakeTestGraph(Family::kErdosRenyi, 150, true, 6);
  IndexOptions opts;
  opts.full_hierarchy = true;
  auto built = ISLabelIndex::Build(g, opts);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  QueryStats stats;
  Distance d;
  for (auto [s, t] : SampleQueryPairs(g, 50, 11)) {
    ASSERT_TRUE(index.Query(s, t, &d, &stats).ok());
    EXPECT_FALSE(stats.used_search)
        << "full hierarchy must answer via Equation 1 alone";
  }
}

TEST(Query, SameVertexIsZero) {
  Graph g = MakeTestGraph(Family::kGrid, 100, true, 2);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  Distance d = 99;
  ASSERT_TRUE(index.Query(42, 42, &d).ok());
  EXPECT_EQ(d, 0u);
}

TEST(Query, OutOfRangeRejected) {
  Graph g = MakeTestGraph(Family::kPath, 10, false, 1);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  Distance d;
  EXPECT_TRUE(index.Query(0, 10, &d).IsOutOfRange());
  EXPECT_TRUE(index.Query(10, 0, &d).IsOutOfRange());
}

TEST(Query, DisconnectedReturnsInfinity) {
  EdgeList el(6);
  el.Add(0, 1, 2);
  el.Add(2, 3, 1);
  Graph g = Graph::FromEdgeList(el);  // components {0,1}, {2,3}, {4}, {5}
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  Distance d;
  ASSERT_TRUE(index.Query(0, 2, &d).ok());
  EXPECT_EQ(d, kInfDistance);
  ASSERT_TRUE(index.Query(4, 5, &d).ok());
  EXPECT_EQ(d, kInfDistance);
  ASSERT_TRUE(index.Query(0, 1, &d).ok());
  EXPECT_EQ(d, 2u);
}

// ---------- Large-weight stress ----------

TEST(Query, LargeWeightsNoOverflow) {
  // Weights near 2^20 stress Distance accumulation paths; augmenting
  // sums stay within Weight, distances within Distance.
  Rng rng(47);
  EdgeList el = GenerateErdosRenyi(120, 300, &rng);
  for (Edge& e : el.edges()) {
    e.w = static_cast<Weight>(1 + rng.Uniform(1u << 20));
  }
  Graph g = Graph::FromEdgeList(std::move(el));
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  for (auto [s, t] : SampleQueryPairs(g, 80, 5)) {
    Distance d = 0;
    ASSERT_TRUE(index.Query(s, t, &d).ok());
    ASSERT_EQ(d, DijkstraP2P(g, s, t));
  }
}

TEST(Query, AugmentingOverflowSurfacesAsStatus) {
  // A path whose augmenting sums exceed the Weight type must fail the
  // build cleanly (OutOfRange), not corrupt the index. Five vertices so
  // the min-degree greedy picks the middle vertex into L_1 (a 4-path's
  // endpoints peel first and never create a 2-path join).
  EdgeList el(5);
  const Weight huge = std::numeric_limits<Weight>::max() / 2 + 10;
  el.Add(0, 1, huge);
  el.Add(1, 2, huge);
  el.Add(2, 3, huge);
  el.Add(3, 4, huge);
  Graph g = Graph::FromEdgeList(std::move(el));
  IndexOptions opts;
  opts.full_hierarchy = true;
  auto built = ISLabelIndex::Build(g, opts);
  ASSERT_FALSE(built.ok());
  EXPECT_TRUE(built.status().IsOutOfRange());
}

// ---------- The paper's worked queries ----------

TEST(PaperExample, Example6BiDijkstraOnK2Hierarchy) {
  VertexHierarchy h = testing::PaperK2Hierarchy();
  LabelArena labels = ComputeLabelsTopDown(h);
  QueryEngine engine(&h, LabelProvider(&labels));
  using namespace testing;

  // Example 6: dist(c, i) = 3, found by the bi-Dijkstra (labels of c and i
  // do not intersect).
  Distance d;
  QueryStats stats;
  ASSERT_TRUE(engine.Query(kC, kI, &d, &stats).ok());
  EXPECT_EQ(d, 3u);
  EXPECT_TRUE(stats.used_search);
  EXPECT_EQ(stats.intersection_size, 0u);

  // Example 4's answers must also hold on the k=2 hierarchy.
  ASSERT_TRUE(engine.Query(kH, kE, &d, &stats).ok());
  EXPECT_EQ(d, 3u);
  ASSERT_TRUE(engine.Query(kA, kG, &d, &stats).ok());
  EXPECT_EQ(d, 3u);

  // Exhaustive check of the example graph against Dijkstra.
  Graph g = PaperFigure1Graph();
  for (VertexId s = 0; s < 9; ++s) {
    SsspResult sssp = DijkstraSssp(g, s);
    for (VertexId t = 0; t < 9; ++t) {
      ASSERT_TRUE(engine.Query(s, t, &d).ok());
      ASSERT_EQ(d, sssp.dist[t]) << "(" << s << "," << t << ")";
    }
  }
}

TEST(PaperExample, FullHierarchyQueriesExhaustive) {
  VertexHierarchy h = testing::PaperFullHierarchy();
  LabelArena labels = ComputeLabelsTopDown(h);
  QueryEngine engine(&h, LabelProvider(&labels));
  Graph g = testing::PaperFigure1Graph();
  Distance d;
  for (VertexId s = 0; s < 9; ++s) {
    SsspResult sssp = DijkstraSssp(g, s);
    for (VertexId t = 0; t < 9; ++t) {
      ASSERT_TRUE(engine.Query(s, t, &d).ok());
      ASSERT_EQ(d, sssp.dist[t]) << "(" << s << "," << t << ")";
    }
  }
}

TEST(PaperExample, AutoBuiltIndexAnswersExactly) {
  // Independent of the hand-chosen hierarchy, the real pipeline must be
  // exact on the example graph.
  Graph g = testing::PaperFigure1Graph();
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  Distance d;
  for (VertexId s = 0; s < 9; ++s) {
    SsspResult sssp = DijkstraSssp(g, s);
    for (VertexId t = 0; t < 9; ++t) {
      ASSERT_TRUE(index.Query(s, t, &d).ok());
      ASSERT_EQ(d, sssp.dist[t]);
    }
  }
}

// ---------- Ablation hook stays exact ----------

TEST(Query, DisabledMuPruningStillExact) {
  Graph g = MakeTestGraph(Family::kRMat, 200, true, 23);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  QueryEngine engine(&index.hierarchy(), LabelProvider(&index.labels()));
  engine.set_disable_mu_pruning(true);
  for (auto [s, t] : SampleQueryPairs(g, 120, 31)) {
    Distance got = 0;
    ASSERT_TRUE(engine.Query(s, t, &got).ok());
    ASSERT_EQ(got, DijkstraP2P(g, s, t)) << "(" << s << "," << t << ")";
  }
}

// The tie-order counterexample behind the tentative-distance fix
// (DESIGN.md §7.1): query (c, f) on the paper's k=2 hierarchy must return
// 5 (c-b-e-f) regardless of extraction tie-breaking.
TEST(PaperExample, MuUpdateCounterexampleCF) {
  VertexHierarchy h = testing::PaperK2Hierarchy();
  LabelArena labels = ComputeLabelsTopDown(h);
  QueryEngine engine(&h, LabelProvider(&labels));
  Distance d = 0;
  ASSERT_TRUE(engine.Query(testing::kC, testing::kF, &d).ok());
  EXPECT_EQ(d, 5u);
  ASSERT_TRUE(engine.Query(testing::kF, testing::kC, &d).ok());
  EXPECT_EQ(d, 5u);
}

// ---------- Disk-resident labels answer identically ----------

TEST(Query, DiskModeMatchesMemoryMode) {
  Graph g = MakeTestGraph(Family::kRMat, 256, true, 13);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex mem_index = std::move(built).value();

  std::string dir = ::testing::TempDir() + "islabel_query_disk";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(mem_index.Save(dir).ok());
  auto loaded = ISLabelIndex::Load(dir, /*labels_in_memory=*/false);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ISLabelIndex disk_index = std::move(loaded).value();
  ASSERT_TRUE(disk_index.labels_on_disk());

  for (auto [s, t] : SampleQueryPairs(g, 120, 17)) {
    Distance dm = 0, dd = 0;
    QueryStats stats;
    ASSERT_TRUE(mem_index.Query(s, t, &dm).ok());
    ASSERT_TRUE(disk_index.Query(s, t, &dd, &stats).ok());
    ASSERT_EQ(dm, dd);
    if (s != t && !disk_index.InCore(s) && !disk_index.InCore(t)) {
      EXPECT_EQ(stats.label_ios, 2u);  // disk mode really hits the store
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// ---------- Epoch wrap across a vertex-count resize ----------

// The per-vertex search state is epoch-stamped and never cleared in bulk;
// correctness across the 32-bit epoch wrap relies on EnsureScratch fully
// rewriting the state on any resize (grown regions must never carry old
// stamps once the counter cycles back over their values). This forces the
// counter to wrap right after InsertVertex grows the vertex count, on an
// engine that survives the growth.
TEST(EpochWrap, QueriesStayExactAcrossInsertAndWrap) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 150, true, 9);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();

  // An engine of our own, NOT reset by the index's update path.
  QueryEngine engine(&index.hierarchy(), LabelProvider(&index.labels()));
  engine.SetEpochForTesting(std::numeric_limits<std::uint32_t>::max() - 3);

  // Stamp search state near the wrap at the pre-insert size.
  auto pairs = SampleQueryPairs(g, 8, 77);
  for (auto [s, t] : pairs) {
    Distance d = 0;
    ASSERT_TRUE(engine.Query(s, t, &d).ok());
    ASSERT_EQ(d, DijkstraP2P(g, s, t));
  }

  // Grow the vertex count; the engine's scratch resizes at its next query
  // and the epoch counter wraps within the following few queries.
  const VertexId v = index.NumVertices();
  ASSERT_TRUE(index.InsertVertex(v, {{3, 2}, {10, 5}}).ok());
  EdgeList updated = g.ToEdgeList();
  updated.EnsureVertices(v + 1);
  updated.Add(v, 3, 2);
  updated.Add(v, 10, 5);
  Graph g2 = Graph::FromEdgeList(std::move(updated));

  for (std::uint64_t round = 0; round < 12; ++round) {
    for (auto [s, t] : SampleQueryPairs(g2, 6, 101 + round)) {
      Distance d = 0;
      ASSERT_TRUE(engine.Query(s, t, &d).ok());
      ASSERT_EQ(d, DijkstraP2P(g2, s, t)) << "(" << s << "," << t << ")";
    }
    Distance d = 0;
    ASSERT_TRUE(engine.Query(0, v, &d).ok());
    ASSERT_EQ(d, DijkstraP2P(g2, 0, v));
  }

  // The one-to-many path reserves one epoch per target; a batch larger
  // than the remaining epoch space must trigger the reset, not reuse
  // stamps.
  engine.SetEpochForTesting(std::numeric_limits<std::uint32_t>::max() - 2);
  std::vector<VertexId> targets;
  for (VertexId t = 0; t < g2.NumVertices(); t += 7) targets.push_back(t);
  std::vector<Distance> out;
  ASSERT_TRUE(engine.QueryOneToMany(5, targets, &out).ok());
  SsspResult sssp = DijkstraSssp(g2, 5);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    ASSERT_EQ(out[i], sssp.dist[targets[i]]) << "t=" << targets[i];
  }
}

// ---------- One-to-many matches the single-query engine ----------

TEST(Query, OneToManyMatchesSingleQueries) {
  Graph g = MakeTestGraph(Family::kRMat, 256, true, 57);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  QueryEngine engine(&index.hierarchy(), LabelProvider(&index.labels()));
  Rng rng(3);
  const VertexId n = index.NumVertices();
  for (int round = 0; round < 8; ++round) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(n));
    std::vector<VertexId> targets;
    for (int j = 0; j < 50; ++j) {
      targets.push_back(static_cast<VertexId>(rng.Uniform(n)));
    }
    std::vector<Distance> got;
    ASSERT_TRUE(engine.QueryOneToMany(s, targets, &got).ok());
    for (std::size_t j = 0; j < targets.size(); ++j) {
      ASSERT_EQ(got[j], DijkstraP2P(g, s, targets[j]))
          << "s=" << s << " t=" << targets[j];
    }
  }
}

// ---------- Arena and nested layouts answer identically ----------

TEST(Query, NestedLayoutMatchesArenaLayout) {
  // The LabelProvider's nested mode backs the layout A/B benchmark; both
  // layouts must agree query for query (and with Dijkstra).
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 220, true, 37);
  auto hr = BuildHierarchy(g, IndexOptions{});
  ASSERT_TRUE(hr.ok());
  LabelArena arena = ComputeLabelsTopDown(*hr);
  LabelSet nested(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    nested[v] = arena.View(v).ToVector();
  }
  QueryEngine arena_engine(&*hr, LabelProvider(&arena));
  QueryEngine nested_engine(&*hr, LabelProvider(&nested));
  for (auto [s, t] : SampleQueryPairs(g, 150, 43)) {
    Distance da = 0, dn = 0;
    ASSERT_TRUE(arena_engine.Query(s, t, &da).ok());
    ASSERT_TRUE(nested_engine.Query(s, t, &dn).ok());
    ASSERT_EQ(da, dn) << "(" << s << "," << t << ")";
    ASSERT_EQ(da, DijkstraP2P(g, s, t));
  }
}

}  // namespace
}  // namespace islabel
