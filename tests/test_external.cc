// The I/O-efficient construction pipeline (§6.1) must produce a hierarchy
// and labels bit-identical to the in-memory pipeline, while actually
// touching disk (counted I/O).

#include <gtest/gtest.h>

#include <filesystem>
#include <tuple>

#include "baseline/dijkstra.h"
#include "core/index.h"
#include "core/labeling.h"
#include "tests/test_common.h"

namespace islabel {
namespace {

using testing::Family;
using testing::MakeTestGraph;

class ExternalPipelineTest
    : public ::testing::TestWithParam<std::tuple<Family, bool>> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "islabel_ext_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

void ExpectHierarchiesEqual(const VertexHierarchy& a,
                            const VertexHierarchy& b) {
  ASSERT_EQ(a.k, b.k);
  ASSERT_EQ(a.level, b.level);
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (std::size_t i = 1; i < a.levels.size(); ++i) {
    ASSERT_EQ(a.levels[i], b.levels[i]) << "level " << i;
  }
  ASSERT_EQ(a.removed_adj.size(), b.removed_adj.size());
  for (VertexId v = 0; v < a.removed_adj.size(); ++v) {
    ASSERT_EQ(a.removed_adj[v], b.removed_adj[v]) << "vertex " << v;
  }
  // Core graphs identical edge for edge.
  ASSERT_EQ(a.g_k.NumVertices(), b.g_k.NumVertices());
  ASSERT_EQ(a.g_k.NumEdges(), b.g_k.NumEdges());
  for (VertexId v = 0; v < a.g_k.NumVertices(); ++v) {
    auto na = a.g_k.Neighbors(v), nb = b.g_k.Neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "core degree of " << v;
    for (std::size_t i = 0; i < na.size(); ++i) {
      ASSERT_EQ(na[i], nb[i]);
      ASSERT_EQ(a.g_k.NeighborWeights(v)[i], b.g_k.NeighborWeights(v)[i]);
      if (a.g_k.has_vias() && b.g_k.has_vias()) {
        ASSERT_EQ(a.g_k.NeighborVias(v)[i], b.g_k.NeighborVias(v)[i]);
      }
    }
  }
}

TEST_P(ExternalPipelineTest, MatchesInMemoryPipeline) {
  const auto [family, weighted] = GetParam();
  Graph g = MakeTestGraph(family, 300, weighted, 21);

  IndexOptions mem_opts;
  auto mem = BuildHierarchy(g, mem_opts);
  ASSERT_TRUE(mem.ok());

  IndexOptions ext_opts;
  ext_opts.memory_budget_bytes = 4096;  // force many sort runs
  ext_opts.tmp_dir = dir_;
  auto ext = BuildHierarchy(g, ext_opts);
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();

  ExpectHierarchiesEqual(*mem, *ext);
  EXPECT_GT(ext->io.bytes_written, 0u);
  EXPECT_GT(ext->io.bytes_read, 0u);

  // Labels computed from the external hierarchy are identical too — the
  // arenas compare slab-equal.
  LabelArena lm = ComputeLabelsTopDown(*mem);
  LabelArena le = ComputeLabelsTopDown(*ext);
  ASSERT_EQ(lm.size(), le.size());
  EXPECT_TRUE(lm == le);
}

INSTANTIATE_TEST_SUITE_P(
    Families, ExternalPipelineTest,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi, Family::kRMat,
                                         Family::kBarabasiAlbert,
                                         Family::kGrid, Family::kStar,
                                         Family::kDisconnected),
                       ::testing::Bool()),
    ([](const auto& info) {
      const auto [family, weighted] = info.param;
      return std::string(testing::FamilyName(family)) +
             (weighted ? "_Weighted" : "_Unit");
    }));

TEST_F(ExternalPipelineTest, LPrimeBufferOverflowPathEquivalent) {
  // A tiny L' capacity triggers the lines-10-11 rewrite repeatedly; the
  // result must not change.
  Graph g = MakeTestGraph(Family::kRMat, 256, true, 33);
  auto mem = BuildHierarchy(g, IndexOptions{});
  ASSERT_TRUE(mem.ok());

  IndexOptions ext_opts;
  ext_opts.memory_budget_bytes = 4096;
  ext_opts.tmp_dir = dir_;
  ext_opts.lprime_buffer_capacity = 8;
  auto ext = BuildHierarchy(g, ext_opts);
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  ExpectHierarchiesEqual(*mem, *ext);
}

TEST_F(ExternalPipelineTest, EndToEndIndexViaExternalBuild) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 250, true, 44);
  IndexOptions opts;
  opts.memory_budget_bytes = 8192;
  opts.tmp_dir = dir_;
  auto built = ISLabelIndex::Build(g, opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ISLabelIndex index = std::move(built).value();
  EXPECT_GT(index.build_stats().io.bytes_written, 0u);

  SsspResult sssp = DijkstraSssp(g, 11);
  for (VertexId t = 0; t < g.NumVertices(); ++t) {
    Distance d = 0;
    ASSERT_TRUE(index.Query(11, t, &d).ok());
    ASSERT_EQ(d, sssp.dist[t]);
  }
}

TEST_F(ExternalPipelineTest, ForcedKRespectedExternally) {
  Graph g = MakeTestGraph(Family::kErdosRenyi, 200, false, 3);
  IndexOptions opts;
  opts.memory_budget_bytes = 4096;
  opts.tmp_dir = dir_;
  opts.forced_k = 3;
  auto ext = BuildHierarchy(g, opts);
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ(ext->k, 3u);
}

TEST_F(ExternalPipelineTest, RandomOrderUnsupportedExternally) {
  Graph g = MakeTestGraph(Family::kPath, 50, false, 1);
  IndexOptions opts;
  opts.memory_budget_bytes = 4096;
  opts.tmp_dir = dir_;
  opts.is_order = IsOrder::kRandom;
  auto ext = BuildHierarchy(g, opts);
  ASSERT_FALSE(ext.ok());
  EXPECT_TRUE(ext.status().IsNotSupported());
}

class ExternalLabelingTest
    : public ::testing::TestWithParam<std::tuple<Family, std::size_t>> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "islabel_extlab_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_P(ExternalLabelingTest, BlockJoinMatchesInMemoryLabeling) {
  const auto [family, budget] = GetParam();
  Graph g = MakeTestGraph(family, 250, /*weighted=*/true, 17);
  auto h = BuildHierarchy(g, IndexOptions{});
  ASSERT_TRUE(h.ok());

  LabelArena in_memory = ComputeLabelsTopDown(*h);

  IndexOptions opts;
  opts.memory_budget_bytes = budget;  // tiny budgets force many BL blocks
  opts.tmp_dir = dir_;
  LabelingStats stats;
  IoStats io;
  auto external = ComputeLabelsTopDownExternal(*h, opts, &stats, &io);
  ASSERT_TRUE(external.ok()) << external.status().ToString();

  ASSERT_EQ(external->size(), in_memory.size());
  std::uint64_t total = 0;
  for (VertexId v = 0; v < in_memory.size(); ++v) {
    ASSERT_EQ((*external)[v].size(), in_memory[v].size()) << "vertex " << v;
    for (std::size_t i = 0; i < in_memory[v].size(); ++i) {
      ASSERT_EQ((*external)[v][i], in_memory[v][i])
          << "vertex " << v << " entry " << i;
    }
    total += in_memory[v].size();
  }
  EXPECT_TRUE(*external == in_memory);
  EXPECT_EQ(stats.total_entries, total);
  EXPECT_GT(io.bytes_read, 0u);
  EXPECT_GT(io.bytes_written, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BudgetsAndFamilies, ExternalLabelingTest,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi, Family::kRMat,
                                         Family::kGrid, Family::kTree,
                                         Family::kBarabasiAlbert),
                       ::testing::Values(std::size_t{1}, std::size_t{4096},
                                         std::size_t{1u << 20})),
    ([](const auto& info) {
      const auto [family, budget] = info.param;
      return std::string(testing::FamilyName(family)) + "_b" +
             std::to_string(budget);
    }));

TEST_F(ExternalPipelineTest, FullyExternalBuildAnswersExactly) {
  // memory_budget routes BOTH the hierarchy and the labeling through the
  // external pipelines; the result must still be an exact index.
  Graph g = MakeTestGraph(Family::kRMat, 300, true, 55);
  IndexOptions opts;
  opts.memory_budget_bytes = 2048;
  opts.tmp_dir = dir_;
  auto built = ISLabelIndex::Build(g, opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ISLabelIndex index = std::move(built).value();
  for (auto [s, t] : testing::SampleQueryPairs(g, 120, 3)) {
    Distance d = 0;
    ASSERT_TRUE(index.Query(s, t, &d).ok());
    ASSERT_EQ(d, DijkstraP2P(g, s, t));
  }
}

TEST_F(ExternalPipelineTest, TempFilesCleanedUp) {
  Graph g = MakeTestGraph(Family::kErdosRenyi, 150, false, 5);
  IndexOptions opts;
  opts.memory_budget_bytes = 4096;
  opts.tmp_dir = dir_;
  ASSERT_TRUE(BuildHierarchy(g, opts).ok());
  std::size_t leftovers = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    (void)entry;
    ++leftovers;
  }
  EXPECT_EQ(leftovers, 0u) << "spill files must be removed";
}

}  // namespace
}  // namespace islabel
