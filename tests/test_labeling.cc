// Tests for vertex labeling: Definition 3 (reference oracle) vs Algorithm 4
// (top-down), structural label invariants, and the paper's worked example
// (Figure 2) asserted number for number.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/hierarchy.h"
#include "core/label.h"
#include "core/labeling.h"
#include "tests/test_common.h"

namespace islabel {
namespace {

using testing::Family;
using testing::MakeTestGraph;

std::vector<LabelEntry> StripVias(LabelView label) {
  std::vector<LabelEntry> out = label.ToVector();
  for (LabelEntry& e : out) e.via = kInvalidVertex;
  return out;
}

// ---------- Algorithm 4 == Definition 3 (Corollary 1) ----------

class LabelEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Family, bool, int>> {};

TEST_P(LabelEquivalenceTest, TopDownMatchesDefinition3) {
  const auto [family, weighted, seed] = GetParam();
  Graph g = MakeTestGraph(family, 120, weighted, seed);
  auto hr = BuildHierarchy(g, IndexOptions{});
  ASSERT_TRUE(hr.ok());
  LabelArena labels = ComputeLabelsTopDown(*hr);

  Definition3Scratch scratch;  // reused across the sweep (epoch-stamped)
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    std::vector<LabelEntry> oracle = ComputeLabelDefinition3(*hr, v, &scratch);
    ASSERT_EQ(labels[v].size(), oracle.size()) << "vertex " << v;
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_EQ(labels[v][i].node, oracle[i].node) << "vertex " << v;
      EXPECT_EQ(labels[v][i].dist, oracle[i].dist)
          << "vertex " << v << " ancestor " << oracle[i].node;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, LabelEquivalenceTest,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi,
                                         Family::kBarabasiAlbert,
                                         Family::kRMat, Family::kGrid,
                                         Family::kWattsStrogatz,
                                         Family::kStar, Family::kTree,
                                         Family::kDisconnected),
                       ::testing::Bool(), ::testing::Values(1, 2, 3)),
    ([](const auto& info) {
      const auto [family, weighted, seed] = info.param;
      return std::string(testing::FamilyName(family)) +
             (weighted ? "_Weighted_" : "_Unit_") + std::to_string(seed);
    }));

// ---------- Label invariants ----------

class LabelInvariantTest : public ::testing::TestWithParam<Family> {};

TEST_P(LabelInvariantTest, SortedSelfEntryAndUpperBound) {
  Graph g = MakeTestGraph(GetParam(), 150, /*weighted=*/true, 5);
  auto hr = BuildHierarchy(g, IndexOptions{});
  ASSERT_TRUE(hr.ok());
  LabelArena labels = ComputeLabelsTopDown(*hr);

  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    // Sorted by ancestor id, unique.
    for (std::size_t i = 1; i < labels[v].size(); ++i) {
      ASSERT_LT(labels[v][i - 1].node, labels[v][i].node);
    }
    // Self entry (v, 0) present.
    const LabelEntry* self = FindEntry(labels[v], v);
    ASSERT_NE(self, nullptr);
    EXPECT_EQ(self->dist, 0u);
    // Ancestors have level >= own level; the core's labels are trivial.
    for (const LabelEntry& e : labels[v]) {
      EXPECT_GE(hr->level[e.node], hr->level[v]);
    }
    if (hr->level[v] == hr->k) {
      EXPECT_EQ(labels[v].size(), 1u);
    }
  }

  // d(v, u) is an upper bound on the true distance (§4.2).
  for (VertexId v = 0; v < std::min<VertexId>(g.NumVertices(), 40); ++v) {
    SsspResult sssp = DijkstraSssp(g, v);
    for (const LabelEntry& e : labels[v]) {
      ASSERT_NE(sssp.dist[e.node], kInfDistance);
      EXPECT_GE(e.dist, sssp.dist[e.node]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, LabelInvariantTest,
                         ::testing::Values(Family::kErdosRenyi, Family::kRMat,
                                           Family::kGrid, Family::kStar,
                                           Family::kTree),
                         [](const auto& info) {
                           return testing::FamilyName(info.param);
                         });

TEST(Labeling, AncestorSetClosedUnderCorollary1) {
  // V[label(v)] = {v} ∪ ∪_{u ∈ adj_Gi(v)} V[label(u)] (Corollary 1).
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 200, false, 7);
  auto hr = BuildHierarchy(g, IndexOptions{});
  ASSERT_TRUE(hr.ok());
  LabelArena labels = ComputeLabelsTopDown(*hr);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    std::set<VertexId> expect = {v};
    for (const HierEdge& e : hr->removed_adj[v]) {
      for (const LabelEntry& le : labels[e.to]) expect.insert(le.node);
    }
    std::vector<VertexId> got = VerticesOf(labels[v]);
    ASSERT_EQ(got.size(), expect.size()) << "vertex " << v;
    std::size_t i = 0;
    for (VertexId u : expect) EXPECT_EQ(got[i++], u);
  }
}

// ---------- Parallel labeling (level-parallel Algorithm 4) ----------

class ParallelLabelingTest : public ::testing::TestWithParam<Family> {};

TEST_P(ParallelLabelingTest, ThreadCountDoesNotChangeLabels) {
  // Within a level every vertex only reads completed upper-level labels
  // (Corollary 1) and writes a precomputed region, so the arena must be
  // byte-identical for every thread count.
  Graph g = MakeTestGraph(GetParam(), 300, /*weighted=*/true, 23);
  auto hr = BuildHierarchy(g, IndexOptions{});
  ASSERT_TRUE(hr.ok());
  const LabelArena serial = ComputeLabelsTopDown(*hr, nullptr, 1);
  for (std::uint32_t threads : {2u, 4u, 0u}) {
    const LabelArena parallel = ComputeLabelsTopDown(*hr, nullptr, threads);
    EXPECT_TRUE(serial == parallel) << "num_threads = " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ParallelLabelingTest,
                         ::testing::Values(Family::kErdosRenyi,
                                           Family::kBarabasiAlbert,
                                           Family::kRMat, Family::kGrid,
                                           Family::kStar,
                                           Family::kDisconnected),
                         [](const auto& info) {
                           return testing::FamilyName(info.param);
                         });

TEST(LabelArenaLayout, SeedCutsPointAtFirstCoreEntry) {
  Graph g = MakeTestGraph(Family::kRMat, 200, true, 15);
  auto hr = BuildHierarchy(g, IndexOptions{});
  ASSERT_TRUE(hr.ok());
  LabelArena labels = ComputeLabelsTopDown(*hr);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const LabelView label = labels.View(v);
    std::size_t expect = label.size();
    for (std::size_t i = 0; i < label.size(); ++i) {
      if (hr->InCore(label[i].node)) {
        expect = i;
        break;
      }
    }
    EXPECT_EQ(labels.SeedStart(v), expect) << "vertex " << v;
  }
}

TEST(LabelArenaLayout, SlabIsContiguousAndOffsetsMonotone) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 150, false, 8);
  auto hr = BuildHierarchy(g, IndexOptions{});
  ASSERT_TRUE(hr.ok());
  LabelArena labels = ComputeLabelsTopDown(*hr);
  const auto& offsets = labels.Offsets();
  ASSERT_EQ(offsets.size(), static_cast<std::size_t>(g.NumVertices()) + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), labels.SlabSize());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_LE(offsets[v], offsets[v + 1]);
    // Views alias the slab directly — no per-label storage.
    EXPECT_EQ(labels.View(v).data(), labels.SlabData() + offsets[v]);
  }
  EXPECT_EQ(labels.TotalEntries(), labels.SlabSize());
  EXPECT_EQ(labels.SlabBytes(), labels.SlabSize() * sizeof(LabelEntry));
}

// ---------- The paper's worked example (Figures 1-2, Examples 2-4) ----------

TEST(PaperExample, Figure2LabelsExact) {
  using namespace testing;  // kA..kI
  VertexHierarchy h = PaperFullHierarchy();
  LabelArena labels = ComputeLabelsTopDown(h);

  using L = std::vector<LabelEntry>;
  // Figure 2(b), with vias ignored. One published value is corrected:
  // the paper prints label(f) ∋ (g,5), but its own Definition 3 yields
  // d(f,g) = d(f,h) + ω_G2(h,g) = 1 + 1 = 2 (= dist_G(f,g) via f-h-g);
  // (g,5) is inconsistent with label(h) ∋ (g,1) + label(f) ∋ (h,1).
  const L expect_c = {{kA, 2}, {kB, 1}, {kC, 0}, {kE, 2}, {kG, 4}};
  const L expect_f = {{kA, 4}, {kE, 3}, {kF, 0}, {kG, 2}, {kH, 1}};
  const L expect_i = {{kA, 2}, {kE, 1}, {kG, 3}, {kI, 0}};
  const L expect_b = {{kA, 1}, {kB, 0}, {kE, 1}, {kG, 3}};
  const L expect_d = {{kA, 2}, {kD, 0}, {kE, 1}, {kG, 1}};
  const L expect_h = {{kA, 5}, {kE, 4}, {kG, 1}, {kH, 0}};
  const L expect_e = {{kA, 1}, {kE, 0}, {kG, 2}};
  const L expect_a = {{kA, 0}, {kG, 3}};
  const L expect_g = {{kG, 0}};

  auto check = [&](VertexId v, const L& expect, const char* name) {
    ASSERT_EQ(labels[v].size(), expect.size()) << "label(" << name << ")";
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(labels[v][i].node, expect[i].node) << "label(" << name << ")";
      EXPECT_EQ(labels[v][i].dist, expect[i].dist)
          << "label(" << name << ") ancestor " << expect[i].node;
    }
  };
  check(kC, expect_c, "c");
  check(kF, expect_f, "f");
  check(kI, expect_i, "i");
  check(kB, expect_b, "b");
  check(kD, expect_d, "d");
  check(kH, expect_h, "h");
  check(kE, expect_e, "e");
  check(kA, expect_a, "a");
  check(kG, expect_g, "g");

  // The paper's own observation: d(h,e) = 4 exceeds dist_G(h,e) = 3.
  const LabelEntry* he = FindEntry(labels[kH], kE);
  ASSERT_NE(he, nullptr);
  EXPECT_EQ(he->dist, 4u);
}

TEST(PaperExample, Definition3AgreesOnFigure2) {
  VertexHierarchy h = testing::PaperFullHierarchy();
  LabelArena labels = ComputeLabelsTopDown(h);
  for (VertexId v = 0; v < 9; ++v) {
    EXPECT_EQ(StripVias(labels[v]),
              StripVias(ComputeLabelDefinition3(h, v)))
        << "vertex " << v;
  }
}

TEST(PaperExample, Example4QueriesViaEquation1) {
  VertexHierarchy h = testing::PaperFullHierarchy();
  LabelArena labels = ComputeLabelsTopDown(h);
  using testing::kA;
  using testing::kE;
  using testing::kG;
  using testing::kH;
  // dist(h, e): intersection {e, a, g}; g attains 1 + 2 = 3.
  Eq1Result r = EvaluateEq1(labels[kH], labels[kE]);
  EXPECT_EQ(r.dist, 3u);
  EXPECT_EQ(r.witness, kG);
  EXPECT_EQ(r.intersection_size, 3u);
  // dist(a, g): intersection {g}; 3 + 0.
  Eq1Result r2 = EvaluateEq1(labels[kA], labels[kG]);
  EXPECT_EQ(r2.dist, 3u);
  EXPECT_EQ(r2.witness, kG);
}

TEST(PaperExample, Example5K2Labels) {
  VertexHierarchy h = testing::PaperK2Hierarchy();
  LabelArena labels = ComputeLabelsTopDown(h);
  using namespace testing;
  using L = std::vector<LabelEntry>;
  const L expect_c = {{kB, 1}, {kC, 0}};
  const L expect_f = {{kE, 3}, {kF, 0}, {kH, 1}};
  const L expect_i = {{kE, 1}, {kI, 0}};
  EXPECT_EQ(StripVias(labels[kC]), expect_c);
  EXPECT_EQ(StripVias(labels[kF]), expect_f);
  EXPECT_EQ(StripVias(labels[kI]), expect_i);
  // Core vertices carry only themselves.
  for (VertexId v : {kA, kB, kD, kE, kG, kH}) {
    ASSERT_EQ(labels[v].size(), 1u);
    EXPECT_EQ(labels[v][0].node, v);
    EXPECT_EQ(labels[v][0].dist, 0u);
  }
}

// ---------- Eq1 / label ops unit tests ----------

TEST(LabelOps, IntersectionEmpty) {
  std::vector<LabelEntry> a = {{1, 5}, {3, 2}};
  std::vector<LabelEntry> b = {{2, 1}, {4, 9}};
  Eq1Result r = EvaluateEq1(a, b);
  EXPECT_EQ(r.dist, kInfDistance);
  EXPECT_EQ(r.witness, kInvalidVertex);
  EXPECT_EQ(r.intersection_size, 0u);
}

TEST(LabelOps, PicksMinimumSum) {
  std::vector<LabelEntry> a = {{1, 5}, {3, 2}, {7, 1}};
  std::vector<LabelEntry> b = {{1, 1}, {3, 3}, {7, 9}};
  Eq1Result r = EvaluateEq1(a, b);
  EXPECT_EQ(r.dist, 5u);  // ancestor 3: 2 + 3
  EXPECT_EQ(r.witness, 3u);
  EXPECT_EQ(r.s_entry.dist, 2u);
  EXPECT_EQ(r.t_entry.dist, 3u);
  EXPECT_EQ(r.intersection_size, 3u);
}

TEST(LabelOps, FindEntryBinarySearch) {
  std::vector<LabelEntry> a = {{1, 5}, {3, 2}, {7, 1}};
  EXPECT_EQ(FindEntry(a, 3)->dist, 2u);
  EXPECT_EQ(FindEntry(a, 4), nullptr);
  EXPECT_EQ(FindEntry(a, 0), nullptr);
  EXPECT_EQ(FindEntry(a, 7)->dist, 1u);
}

TEST(LabelOps, VerticesOfExtraction) {
  std::vector<LabelEntry> a = {{1, 5}, {3, 2}};
  std::vector<VertexId> v = VerticesOf(a);
  EXPECT_EQ(v, (std::vector<VertexId>{1, 3}));
}

}  // namespace
}  // namespace islabel
